"""Tests of the serving layer: bundles, the annotation service and streaming.

The central guarantee: a bundle saved from a fitted annotator serves
*bitwise-identical* predictions from a process that holds no
:class:`~repro.kg.graph.KnowledgeGraph` and performs no index rebuild.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.annotator import KGLinkAnnotator, KGLinkConfig
from repro.core.errors import ServiceClosed
from repro.data.corpus import TableCorpus
from repro.kg.graph import KnowledgeGraph
from repro.kg.snapshot import KGSnapshot
from repro.serve import AnnotationService, ServiceBundle

TINY_CONFIG = KGLinkConfig(
    epochs=1, batch_size=4, learning_rate=1e-3, pretrain_steps=2,
    hidden_size=32, num_layers=1, num_heads=2, intermediate_size=48,
    top_k_rows=5, max_tokens_per_column=12, vocab_size=900,
    max_position_embeddings=140, max_feature_tokens=8,
)


@pytest.fixture(scope="module")
def fitted(graph, linker, semtab_splits):
    train = TableCorpus("train", semtab_splits.train.tables[:10],
                        semtab_splits.train.label_vocabulary)
    annotator = KGLinkAnnotator(graph, TINY_CONFIG, linker=linker)
    annotator.fit(train)
    return annotator


@pytest.fixture(scope="module")
def serve_tables(semtab_splits):
    return semtab_splits.test.tables[:7]


@pytest.fixture(scope="module")
def bundle_dir(fitted, tmp_path_factory):
    return ServiceBundle.from_annotator(fitted).save(
        tmp_path_factory.mktemp("bundles") / "svc"
    )


class TestKGSnapshot:
    def test_matches_graph_surface(self, graph):
        snapshot = KGSnapshot.from_graph(graph)
        assert len(snapshot) == len(graph)
        entity = next(iter(graph.entities()))
        probe = entity.entity_id
        assert probe in snapshot
        assert snapshot.entity(probe).label == entity.label
        assert snapshot.entity(probe).schema == entity.schema
        assert snapshot.one_hop_neighbors(probe) == graph.one_hop_neighbors(probe)
        assert (snapshot.neighborhood_with_predicates(probe)
                == graph.neighborhood_with_predicates(probe))

    def test_payload_round_trip(self, graph):
        snapshot = KGSnapshot.from_graph(graph)
        payload = json.loads(json.dumps(snapshot.to_payload()))
        restored = KGSnapshot.from_payload(payload)
        assert len(restored) == len(snapshot)
        for entity in list(snapshot.entities())[:25]:
            probe = entity.entity_id
            assert restored.entity(probe) == entity
            assert (restored.neighborhood_with_predicates(probe)
                    == snapshot.neighborhood_with_predicates(probe))

    def test_from_graph_idempotent_on_snapshot(self, graph):
        snapshot = KGSnapshot.from_graph(graph)
        assert KGSnapshot.from_graph(snapshot) is snapshot


class TestServiceBundle:
    def test_unfitted_annotator_rejected(self, graph):
        with pytest.raises(RuntimeError):
            ServiceBundle.from_annotator(KGLinkAnnotator(graph, TINY_CONFIG))

    def test_save_writes_versioned_layout(self, bundle_dir):
        manifest = json.loads((bundle_dir / "manifest.json").read_text())
        assert manifest["format_version"] == 3
        assert manifest["backend"]["name"] == "bm25"
        assert (bundle_dir / "model.npz").exists()
        assert (bundle_dir / "index.npz").exists()
        assert (bundle_dir / "graph.json").exists()

    def test_load_restores_components(self, bundle_dir, fitted):
        bundle = ServiceBundle.load(bundle_dir)
        assert bundle.config == fitted.config
        assert bundle.label_vocabulary == fitted.label_vocabulary
        assert bundle.tokenizer.vocab_size == fitted.tokenizer.vocab_size
        assert bundle.backend.is_finalized
        assert len(bundle.backend) == len(fitted.linker.index)
        assert bundle.linker_config == fitted.linker.config
        assert bundle.metadata["graph_entities"] == len(fitted.graph)

    def test_custom_linker_config_round_trips(self, graph, semtab_splits, tmp_path):
        from repro.kg.linker import EntityLinker, LinkerConfig

        linker_config = LinkerConfig(max_candidates=3, link_numbers_and_dates=True)
        annotator = KGLinkAnnotator(graph, TINY_CONFIG,
                                    linker=EntityLinker(graph, linker_config))
        train = TableCorpus("train", semtab_splits.train.tables[:6],
                            semtab_splits.train.label_vocabulary)
        annotator.fit(train)
        directory = ServiceBundle.from_annotator(annotator).save(tmp_path / "svc")
        service = AnnotationService.load(directory)
        # The served linker keeps the *trained* retrieval settings, not the
        # defaults KGLinkConfig would reconstruct.
        assert service.linker.config == linker_config
        tables = semtab_splits.test.tables[:3]
        assert (service.annotate_batch(tables)
                == [annotator.annotate(table) for table in tables])

    def test_unsupported_format_rejected(self, bundle_dir, tmp_path):
        clone = tmp_path / "clone"
        clone.mkdir()
        for item in bundle_dir.iterdir():
            (clone / item.name).write_bytes(item.read_bytes())
        manifest = json.loads((clone / "manifest.json").read_text())
        manifest["format_version"] = 99
        (clone / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError):
            ServiceBundle.load(clone)


def _assert_no_knowledge_graph(service):
    assert not isinstance(service.bundle.graph_view, KnowledgeGraph)
    assert not isinstance(service.extractor.graph, KnowledgeGraph)
    assert service.linker.graph is None


class TestAnnotationService:
    def test_round_trip_predictions_bitwise_equal(self, bundle_dir, fitted,
                                                  serve_tables):
        service = AnnotationService.load(bundle_dir)
        _assert_no_knowledge_graph(service)
        expected = [fitted.annotate(table) for table in serve_tables]
        assert service.annotate_batch(serve_tables) == expected
        assert [service.annotate(table) for table in serve_tables] == expected

    def test_into_service_matches_loaded_service(self, bundle_dir, fitted,
                                                 serve_tables):
        in_process = fitted.into_service()
        loaded = AnnotationService.load(bundle_dir)
        assert (in_process.annotate_batch(serve_tables)
                == loaded.annotate_batch(serve_tables))

    def test_annotate_batch_empty(self, bundle_dir):
        service = AnnotationService.load(bundle_dir)
        assert service.annotate_batch([]) == []

    def test_invalid_max_batch_rejected(self, bundle_dir):
        with pytest.raises(ValueError):
            AnnotationService.load(bundle_dir, max_batch=0)

    def test_cache_is_bounded_and_counts(self, bundle_dir, serve_tables):
        service = AnnotationService.load(bundle_dir, cache_size=2)
        service.annotate_batch(serve_tables)
        stats = service.stats()
        assert stats.cache_size <= 2
        assert stats.cache_misses == len(serve_tables)
        service.annotate(serve_tables[-1])  # most recent entry: a hit
        assert service.stats().cache_hits >= 1

    def test_stats_telemetry(self, bundle_dir, serve_tables):
        service = AnnotationService.load(bundle_dir)
        service.annotate_batch(serve_tables)
        stats = service.stats()
        assert stats.requests == 1
        assert stats.tables == len(serve_tables)
        assert stats.part1_seconds > 0.0
        assert stats.encode_seconds > 0.0
        assert stats.batches >= 1
        assert 0.0 < stats.bucket_fill <= 1.0
        assert stats.useful_tokens > 0
        payload = stats.as_dict()
        assert payload["bucket_fill"] == stats.bucket_fill
        service.reset_stats()
        zeroed = service.stats()
        assert zeroed.requests == 0 and zeroed.tables == 0
        assert zeroed.cache_hits == 0 and zeroed.cache_misses == 0


class TestAnnotateStream:
    @pytest.mark.parametrize("max_batch", [1, 2, 3, 5, 7, 50])
    def test_ordering_under_ragged_batches(self, bundle_dir, serve_tables,
                                           max_batch):
        service = AnnotationService.load(bundle_dir)
        expected = service.annotate_batch(serve_tables)
        streamed = list(service.annotate_stream(serve_tables, max_batch=max_batch))
        assert streamed == expected

    def test_stream_is_lazy_and_accepts_generators(self, bundle_dir, serve_tables):
        service = AnnotationService.load(bundle_dir)
        consumed: list[str] = []

        def feed():
            for table in serve_tables:
                consumed.append(table.table_id)
                yield table

        stream = service.annotate_stream(feed(), max_batch=2)
        assert consumed == []  # nothing pulled before iteration
        first = next(stream)
        assert isinstance(first, list)
        # Pipelining prefetches at most the next micro-batch, not the world.
        assert len(consumed) <= 4
        rest = list(stream)
        assert [first, *rest] == service.annotate_batch(serve_tables)

    def test_empty_stream(self, bundle_dir):
        service = AnnotationService.load(bundle_dir)
        assert list(service.annotate_stream(iter(()))) == []

    def test_annotate_during_stream_is_safe(self, bundle_dir, serve_tables):
        reference = AnnotationService.load(bundle_dir)
        expected = reference.annotate_batch(serve_tables)
        # cache_size=0 forces full Part 1 on every request, so the consumer's
        # annotate() genuinely contends with the stream's background worker
        # for the shared retrieval backend (serialized by the prepare lock).
        service = AnnotationService.load(bundle_dir, cache_size=0)
        streamed = []
        for index, labels in enumerate(
            service.annotate_stream(serve_tables, max_batch=2)
        ):
            streamed.append(labels)
            assert service.annotate(serve_tables[0]) == expected[0], index
        assert streamed == expected

    def test_invalid_max_batch(self, bundle_dir, serve_tables):
        service = AnnotationService.load(bundle_dir)
        with pytest.raises(ValueError):
            list(service.annotate_stream(serve_tables, max_batch=-1))


class TestDeprecationShims:
    def test_save_annotator_writes_bundle(self, fitted, graph, serve_tables,
                                          tmp_path):
        from repro.core.persistence import load_annotator, save_annotator

        with pytest.deprecated_call():
            directory = save_annotator(fitted, tmp_path / "legacy")
        # The shim now writes a full bundle: serving works graph-free...
        service = AnnotationService.load(directory)
        expected = [fitted.annotate(table) for table in serve_tables]
        assert service.annotate_batch(serve_tables) == expected
        # ...and the legacy loader still returns a training facade, without
        # rebuilding the retrieval index from the graph.
        with pytest.deprecated_call():
            restored = load_annotator(directory, graph)
        assert restored.linker.index.is_finalized
        assert [restored.annotate(table) for table in serve_tables] == expected


class TestCharNGramServing:
    def test_bundle_round_trip_with_second_backend(self, graph, semtab_splits,
                                                   tmp_path):
        from repro.kg.linker import EntityLinker, LinkerConfig

        train = TableCorpus("train", semtab_splits.train.tables[:8],
                            semtab_splits.train.label_vocabulary)
        linker = EntityLinker(
            graph, LinkerConfig(max_candidates=8, backend="char_ngram")
        )
        annotator = KGLinkAnnotator(graph, TINY_CONFIG, linker=linker)
        annotator.fit(train)
        tables = semtab_splits.test.tables[:3]
        expected = [annotator.annotate(table) for table in tables]

        directory = ServiceBundle.from_annotator(annotator).save(tmp_path / "svc")
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["backend"]["name"] == "char_ngram"
        service = AnnotationService.load(directory)
        _assert_no_knowledge_graph(service)
        assert service.annotate_batch(tables) == expected


class TestShardedServing:
    """The shard plan: persisted in the bundle, applied at load, bitwise-safe."""

    def test_manifest_records_shard_plan(self, bundle_dir):
        manifest = json.loads((bundle_dir / "manifest.json").read_text())
        assert manifest["shard_plan"] == {"num_shards": 1, "executor": "serial"}

    @pytest.mark.parametrize("executor_name", ["serial", "thread"])
    def test_sharded_service_predictions_bitwise_equal(self, bundle_dir,
                                                       serve_tables,
                                                       executor_name):
        import dataclasses as dc

        from repro.kg.backends import ShardedBackend

        reference = AnnotationService.load(bundle_dir)
        expected = reference.annotate_batch(serve_tables)

        bundle = ServiceBundle.load(bundle_dir)
        bundle.linker_config = dc.replace(
            bundle.linker_config, num_shards=3, executor=executor_name
        )
        with AnnotationService(bundle) as sharded:
            assert isinstance(sharded.linker.index, ShardedBackend)
            assert sharded.linker.index.num_shards == 3
            assert sharded.annotate_batch(serve_tables) == expected

    def test_shard_plan_round_trips_through_disk(self, bundle_dir, serve_tables,
                                                 tmp_path):
        import dataclasses as dc

        from repro.kg.backends import ShardedBackend

        expected = AnnotationService.load(bundle_dir).annotate_batch(serve_tables)
        bundle = ServiceBundle.load(bundle_dir)
        bundle.linker_config = dc.replace(bundle.linker_config, num_shards=2)
        directory = bundle.save(tmp_path / "sharded")
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["shard_plan"]["num_shards"] == 2
        with AnnotationService.load(directory) as service:
            assert isinstance(service.linker.index, ShardedBackend)
            assert service.annotate_batch(serve_tables) == expected

    def test_bundle_saved_from_sharded_service_is_canonical(self, bundle_dir,
                                                            serve_tables,
                                                            tmp_path):
        # Saving a service whose linker runs sharded must write the inner
        # backend's name and the unsharded arrays, not K shard copies.
        import dataclasses as dc

        bundle = ServiceBundle.load(bundle_dir)
        bundle.linker_config = dc.replace(bundle.linker_config, num_shards=2)
        with AnnotationService(bundle) as service:
            expected = service.annotate_batch(serve_tables)
            bundle.backend = service.linker.index  # the ShardedBackend
            directory = bundle.save(tmp_path / "resaved")
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["backend"]["name"] == "bm25"
        with AnnotationService.load(directory) as restored:
            assert restored.annotate_batch(serve_tables) == expected

    def test_service_close_spares_shared_sharded_index(self, graph,
                                                       semtab_splits):
        # An annotator trained with a sharded linker hands its ShardedBackend
        # to into_service() by reference; closing the service must not tear
        # down the executor the (still-training) annotator depends on.
        from repro.kg.backends import ShardedBackend
        from repro.kg.linker import EntityLinker, LinkerConfig

        linker = EntityLinker(graph, LinkerConfig(max_candidates=8, num_shards=2))
        assert isinstance(linker.index, ShardedBackend)
        annotator = KGLinkAnnotator(graph, TINY_CONFIG, linker=linker)
        train = TableCorpus("train", semtab_splits.train.tables[:6],
                            semtab_splits.train.label_vocabulary)
        annotator.fit(train)
        table = semtab_splits.test.tables[0]
        expected = annotator.annotate(table)
        with annotator.into_service() as service:
            assert service.linker.index is linker.index
            assert service.annotate(table) == expected
        # The annotator keeps working after the service shut down: cold
        # caches force real searches through the (still-open) sharded index.
        annotator._processed_cache.clear()
        linker.cache_clear()
        assert annotator.annotate(table) == expected
        linker.close()

    def test_format_2_bundles_load_unchanged(self, bundle_dir, serve_tables,
                                             tmp_path):
        expected = AnnotationService.load(bundle_dir).annotate_batch(serve_tables)
        clone = tmp_path / "v2"
        clone.mkdir()
        for item in bundle_dir.iterdir():
            (clone / item.name).write_bytes(item.read_bytes())
        manifest = json.loads((clone / "manifest.json").read_text())
        # Reconstruct what a PR-4 writer produced: format 2, no shard plan,
        # no post-v2 config/linker knobs.
        manifest["format_version"] = 2
        manifest.pop("shard_plan")
        manifest["linker_config"].pop("num_shards")
        manifest["linker_config"].pop("executor")
        manifest["config"].pop("length_bucketed_training")
        (clone / "manifest.json").write_text(json.dumps(manifest))
        bundle = ServiceBundle.load(clone)
        assert bundle.linker_config.num_shards == 1
        assert bundle.linker_config.executor == "serial"
        service = AnnotationService(bundle)
        assert service.annotate_batch(serve_tables) == expected


class TestProcessPoolPrepare:
    """The Part-1 prepare stage distributed across worker processes."""

    def test_process_pool_predictions_bitwise_equal(self, bundle_dir,
                                                    serve_tables):
        expected = AnnotationService.load(bundle_dir).annotate_batch(serve_tables)
        with AnnotationService.load(bundle_dir, processes=2) as service:
            assert service.annotate_batch(serve_tables) == expected
            # Warm tables come from the parent-side cache, cold ones from the
            # pool; both paths must agree.
            assert service.annotate_batch(serve_tables) == expected
            stats = service.stats()
            assert stats.cache_misses == len(serve_tables)
            assert stats.cache_hits == len(serve_tables)

    def test_process_pool_stream_matches_batch(self, bundle_dir, serve_tables):
        with AnnotationService.load(bundle_dir, processes=2,
                                    cache_size=0) as service:
            expected = AnnotationService.load(bundle_dir).annotate_batch(
                serve_tables
            )
            streamed = list(service.annotate_stream(serve_tables, max_batch=2))
            assert streamed == expected

    def test_injected_thread_executor(self, bundle_dir, serve_tables):
        from repro.runtime import ThreadExecutor

        expected = AnnotationService.load(bundle_dir).annotate_batch(serve_tables)
        with AnnotationService.load(
            bundle_dir, executor=ThreadExecutor(max_workers=2), cache_size=0
        ) as service:
            assert service.annotate_batch(serve_tables) == expected
            assert list(service.annotate_stream(serve_tables)) == expected

    def test_invalid_processes_rejected(self, bundle_dir):
        with pytest.raises(ValueError):
            AnnotationService.load(bundle_dir, processes=-1)

    def test_duplicate_tables_in_one_request(self, bundle_dir, serve_tables):
        with AnnotationService.load(bundle_dir, processes=1) as service:
            table = serve_tables[0]
            first, second = service.annotate_batch([table, table])
            assert first == second

    def test_colliding_table_ids_with_cache_disabled(self, bundle_dir,
                                                     serve_tables):
        # cache_size=0 promises every table is processed independently, so
        # two *different* tables that happen to share an id must each get
        # their own predictions — not the first table's.
        import dataclasses as dc

        a, b = serve_tables[0], serve_tables[1]
        b_clone = dc.replace(b, table_id=a.table_id)
        service = AnnotationService.load(bundle_dir, cache_size=0)
        expected_a = service.annotate(a)
        expected_b = service.annotate(b)
        assert service.annotate_batch([a, b_clone]) == [expected_a, expected_b]


class TestConcurrentAnnotate:
    def test_stats_counters_survive_threaded_annotate(self, bundle_dir,
                                                      serve_tables):
        # Regression test for the counter races: hammer annotate() from many
        # threads; every request/table/hit/miss must be accounted for.
        import threading

        service = AnnotationService.load(bundle_dir)
        expected = [service.annotate(table) for table in serve_tables]
        service.reset_stats()
        service._cache.clear()

        n_threads, rounds = 8, 5
        failures: list = []

        def hammer():
            try:
                for _ in range(rounds):
                    for table, want in zip(serve_tables, expected, strict=True):
                        if service.annotate(table) != want:
                            raise AssertionError("prediction changed under threads")
            except Exception as error:  # noqa: BLE001 - surfaced below
                failures.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        stats = service.stats()
        total = n_threads * rounds * len(serve_tables)
        assert stats.requests == total
        assert stats.tables == total
        assert stats.cache_hits + stats.cache_misses == total


class TestAnnotatorCache:
    def test_processed_cache_is_bounded_lru(self, graph, linker, semtab_splits):
        config = dataclasses.replace(TINY_CONFIG, processed_cache_size=3)
        annotator = KGLinkAnnotator(graph, config, linker=linker)
        tables = semtab_splits.train.tables[:5]
        annotator._process(tables)
        info = annotator.processed_cache_info()
        assert info.maxsize == 3
        assert info.currsize <= 3
        assert info.misses == 5
        assert info.evictions == 2
        annotator._process([tables[-1]])  # most recent: a hit, no new miss
        info = annotator.processed_cache_info()
        assert info.hits == 1
        assert info.misses == 5


class TestStatsSerialization:
    def test_stats_to_dict_is_json_safe(self, bundle_dir, serve_tables):
        with AnnotationService.load(bundle_dir) as service:
            service.annotate_batch(serve_tables[:2])
            payload = service.stats().to_dict()
        # Straight through json: no numpy scalars, no dataclass leftovers.
        assert json.loads(json.dumps(payload)) == payload
        assert payload["requests"] == 1
        assert payload["tables"] == 2
        assert 0.0 <= payload["bucket_fill"] <= 1.0
        assert 0.0 <= payload["cache_hit_rate"] <= 1.0
        for name, value in payload.items():
            assert type(value) in (int, float), (name, type(value))
        # The pre-gateway name keeps working.
        with AnnotationService.load(bundle_dir) as service:
            assert service.stats().as_dict() == service.stats().to_dict()

    def test_health_to_dict_is_json_safe(self, bundle_dir):
        with AnnotationService.load(bundle_dir) as service:
            payload = service.health().to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload == {"status": "healthy", "reasons": [], "breakers": {}}


class TestAnnotateBudget:
    """``budget_s`` turns annotate calls into deadline-bounded work."""

    def test_generous_budget_changes_nothing(self, bundle_dir, serve_tables):
        with AnnotationService.load(bundle_dir) as service:
            expected = service.annotate_batch(serve_tables)
            assert service.annotate_batch(serve_tables, budget_s=60.0) == expected
            assert service.annotate(serve_tables[0], budget_s=60.0) == expected[0]

    def test_exhausted_budget_raises_at_admission(self, bundle_dir, serve_tables):
        from repro.core.errors import DeadlineExceeded

        with AnnotationService.load(bundle_dir) as service:
            with pytest.raises(DeadlineExceeded):
                service.annotate_batch(serve_tables, budget_s=0.0)
            with pytest.raises(DeadlineExceeded):
                service.annotate(serve_tables[0], budget_s=-1.0)
            # The failed calls left no in-flight registration behind: the
            # service still answers, and close() will not wedge.
            assert service.annotate(serve_tables[0]) is not None

    def test_tiny_budget_fails_typed_never_hangs(self, bundle_dir, serve_tables):
        from repro.core.errors import DeadlineExceeded

        # Smaller than any real stage: whichever boundary notices first must
        # raise the typed error rather than letting the request run long.
        with AnnotationService.load(bundle_dir, cache_size=0) as service:
            with pytest.raises(DeadlineExceeded):
                service.annotate_batch(serve_tables, budget_s=1e-7)


class TestCloseRace:
    """close() must drain in-flight annotate calls before touching pools."""

    def test_close_blocks_until_in_flight_work_finishes(self, bundle_dir,
                                                        serve_tables):
        import threading
        import time as _time

        service = AnnotationService.load(bundle_dir)
        started = threading.Event()
        release = threading.Event()
        original = service._prepare

        def gated(tables, deadline_s=None):
            started.set()
            assert release.wait(10.0)
            return original(tables, deadline_s=deadline_s)

        service._prepare = gated
        results: list = []
        annotator = threading.Thread(
            target=lambda: results.append(service.annotate_batch(serve_tables[:3]))
        )
        annotator.start()
        assert started.wait(10.0)
        closer = threading.Thread(target=service.close)
        closer.start()
        _time.sleep(0.2)
        # The drain is real: close() is still waiting on the in-flight batch.
        assert closer.is_alive()
        release.set()
        annotator.join(timeout=30.0)
        closer.join(timeout=30.0)
        assert not closer.is_alive() and not annotator.is_alive()
        assert results and len(results[0]) == 3  # the riders got answers
        with pytest.raises(ServiceClosed):
            service.annotate(serve_tables[0])  # and the service is now closed

    def test_concurrent_annotate_and_close_never_crashes(self, bundle_dir,
                                                         serve_tables):
        import threading

        service = AnnotationService.load(bundle_dir)
        outcomes: list = []
        lock = threading.Lock()

        def annotate():
            try:
                predictions = service.annotate_batch(serve_tables[:2])
                with lock:
                    outcomes.append(("ok", len(predictions)))
            except ServiceClosed:
                with lock:
                    outcomes.append(("closed", None))
            except BaseException as error:  # noqa: BLE001 - the regression
                with lock:
                    outcomes.append(("crash", repr(error)))

        threads = [threading.Thread(target=annotate) for _ in range(6)]
        for thread in threads:
            thread.start()
        service.close()
        for thread in threads:
            thread.join(timeout=30.0)
        assert len(outcomes) == 6
        # Every caller either got answers or the typed refusal — a pool
        # never died underneath an admitted request.
        assert all(kind in ("ok", "closed") for kind, _ in outcomes), outcomes


class TestLifecycleLockDiscipline:
    """``_closed`` is guarded-by ``_lifecycle``: every reader takes the lock.

    Pins the REP101 fixes — ``_ensure_open`` and ``health()`` used to read
    ``_closed`` without the lifecycle lock, so a reader could observe the
    flag mid-flip while ``close()`` was draining.
    """

    def test_ensure_open_and_health_acquire_the_lifecycle_lock(self, bundle_dir):
        service = AnnotationService.load(bundle_dir)
        inner = service._lifecycle
        acquisitions = []

        class RecordingCondition:
            def __enter__(self):
                acquisitions.append(1)
                return inner.__enter__()

            def __exit__(self, *exc_info):
                return inner.__exit__(*exc_info)

            def __getattr__(self, name):
                return getattr(inner, name)

        service._lifecycle = RecordingCondition()  # type: ignore[assignment]
        try:
            service._ensure_open()
            assert len(acquisitions) == 1
            service.health()
            assert len(acquisitions) == 2
        finally:
            service._lifecycle = inner
            service.close()

    def test_ensure_open_is_reentrant_under_the_lifecycle_lock(self, bundle_dir):
        import threading

        # _track() calls _ensure_open() while already holding _lifecycle;
        # Condition's default RLock makes the nested acquire legal.  Probe
        # from a thread so a regression to a plain Lock fails the test
        # instead of hanging the suite.
        with AnnotationService.load(bundle_dir) as service:
            done = threading.Event()

            def probe() -> None:
                with service._lifecycle:
                    service._ensure_open()
                done.set()

            thread = threading.Thread(target=probe, daemon=True)
            thread.start()
            assert done.wait(10.0), (
                "_ensure_open deadlocked while the lifecycle lock was held"
            )
