"""Graceful-degradation tests: the service under deterministic injected faults.

The contract under test, from the resilience tentpole: whenever
``service.health()`` reports anything other than ``failed``, annotations are
*bitwise-identical* to the fault-free run — injected timeouts, worker
crashes, dead pools and slow shards degrade latency and light up telemetry,
never change predictions.  Faults come from
:class:`~repro.runtime.FaultPlan`/:class:`~repro.runtime.FaultyExecutor`, so
no real process dies and no wall-clock time is slept.
"""

from __future__ import annotations

import json

import pytest

from repro.core.annotator import KGLinkAnnotator, KGLinkConfig
from repro.core.errors import BundleCorrupted, ServiceClosed, ShardUnavailable
from repro.data.corpus import TableCorpus
from repro.kg.backends import ShardedBackend
from repro.runtime import FaultPlan, FaultyExecutor, RuntimePolicy, create_executor
from repro.serve import AnnotationService, ServiceBundle

TINY_CONFIG = KGLinkConfig(
    epochs=1, batch_size=4, learning_rate=1e-3, pretrain_steps=2,
    hidden_size=32, num_layers=1, num_heads=2, intermediate_size=48,
    top_k_rows=5, max_tokens_per_column=12, vocab_size=900,
    max_position_embeddings=140, max_feature_tokens=8,
)

EXECUTOR_NAMES = ["serial", "thread", "process"]

#: Small budgets so fault scenarios converge in a handful of calls; sleeps
#: are injected (recorded, not slept) wherever the suite exercises them.
CHAOS_POLICY = RuntimePolicy(timeout_s=None, max_retries=1,
                             breaker_threshold=2, breaker_reset_s=60.0)


@pytest.fixture(scope="module")
def fitted(graph, linker, semtab_splits):
    train = TableCorpus("train", semtab_splits.train.tables[:8],
                        semtab_splits.train.label_vocabulary)
    annotator = KGLinkAnnotator(graph, TINY_CONFIG, linker=linker)
    annotator.fit(train)
    return annotator


@pytest.fixture(scope="module")
def serve_tables(semtab_splits):
    return semtab_splits.test.tables[:6]


@pytest.fixture(scope="module")
def bundle_dir(fitted, tmp_path_factory):
    return ServiceBundle.from_annotator(fitted).save(
        tmp_path_factory.mktemp("bundles") / "svc"
    )


@pytest.fixture(scope="module")
def expected(bundle_dir, serve_tables):
    """The fault-free annotations every degraded run must reproduce exactly."""
    service = AnnotationService.load(bundle_dir)
    try:
        return service.annotate_batch(serve_tables)
    finally:
        service.close()


def _clone_bundle(bundle_dir, destination):
    destination.mkdir()
    for item in bundle_dir.iterdir():
        (destination / item.name).write_bytes(item.read_bytes())
    return destination


# --------------------------------------------------------------------------- #
# satellite: bundle validation before arrays are touched
# --------------------------------------------------------------------------- #
class TestBundleValidation:
    def test_manifest_records_artifact_hashes(self, bundle_dir):
        manifest = json.loads((bundle_dir / "manifest.json").read_text())
        for name in ("model.npz", "index.npz", "graph.json"):
            entry = manifest["artifacts"][name]
            assert len(entry["sha256"]) == 64
            assert entry["bytes"] == (bundle_dir / name).stat().st_size

    def test_artifacts_record_stays_out_of_metadata(self, bundle_dir):
        assert "artifacts" not in ServiceBundle.load(bundle_dir).metadata

    def test_truncated_weights_named(self, bundle_dir, tmp_path):
        clone = _clone_bundle(bundle_dir, tmp_path / "truncated")
        weights = clone / "model.npz"
        weights.write_bytes(weights.read_bytes()[:128])
        with pytest.raises(BundleCorrupted, match="model.npz"):
            ServiceBundle.load(clone)

    def test_flipped_byte_fails_the_checksum(self, bundle_dir, tmp_path):
        clone = _clone_bundle(bundle_dir, tmp_path / "flipped")
        index = clone / "index.npz"
        raw = bytearray(index.read_bytes())
        raw[len(raw) // 2] ^= 0xFF  # same size, different content
        index.write_bytes(bytes(raw))
        with pytest.raises(BundleCorrupted, match="index.npz"):
            ServiceBundle.load(clone)

    def test_missing_file_named(self, bundle_dir, tmp_path):
        clone = _clone_bundle(bundle_dir, tmp_path / "missing")
        (clone / "index.npz").unlink()
        with pytest.raises(BundleCorrupted, match="index.npz"):
            ServiceBundle.load(clone)

    def test_garbage_manifest_rejected(self, bundle_dir, tmp_path):
        clone = _clone_bundle(bundle_dir, tmp_path / "garbage")
        (clone / "manifest.json").write_text("{not json")
        with pytest.raises(BundleCorrupted, match="manifest.json"):
            ServiceBundle.load(clone)

    def test_manifest_missing_required_keys_rejected(self, bundle_dir, tmp_path):
        clone = _clone_bundle(bundle_dir, tmp_path / "schema")
        manifest = json.loads((clone / "manifest.json").read_text())
        del manifest["tokenizer_tokens"]
        (clone / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(BundleCorrupted, match="tokenizer_tokens"):
            ServiceBundle.load(clone)

    def test_missing_bundle_directory_rejected(self, tmp_path):
        with pytest.raises(BundleCorrupted, match="manifest.json"):
            ServiceBundle.load(tmp_path / "never-saved")

    def test_bundle_without_integrity_record_still_loads(self, bundle_dir,
                                                         tmp_path):
        # Bundles written before the integrity record (and by external
        # tooling) carry no "artifacts" key: presence checks still run,
        # checksum checks are skipped.
        clone = _clone_bundle(bundle_dir, tmp_path / "legacy")
        manifest = json.loads((clone / "manifest.json").read_text())
        del manifest["artifacts"]
        (clone / "manifest.json").write_text(json.dumps(manifest))
        assert ServiceBundle.load(clone).backend.is_finalized

    def test_corruption_is_also_a_value_error(self, bundle_dir, tmp_path):
        # Legacy call sites catch ValueError around bundle loads.
        clone = _clone_bundle(bundle_dir, tmp_path / "compat")
        (clone / "graph.json").unlink()
        with pytest.raises(ValueError):
            ServiceBundle.load(clone)


# --------------------------------------------------------------------------- #
# satellite: close() semantics
# --------------------------------------------------------------------------- #
class TestServiceClosed:
    def test_close_is_idempotent(self, bundle_dir):
        service = AnnotationService.load(bundle_dir)
        service.close()
        service.close()  # no error, no double-teardown

    def test_annotate_after_close_raises(self, bundle_dir, serve_tables):
        service = AnnotationService.load(bundle_dir)
        service.close()
        with pytest.raises(ServiceClosed):
            service.annotate(serve_tables[0])
        with pytest.raises(ServiceClosed):
            service.annotate_batch(serve_tables)
        with pytest.raises(ServiceClosed):
            service.annotate_stream(serve_tables)  # raises at call, not next()

    def test_health_reports_failed_after_close(self, bundle_dir):
        service = AnnotationService.load(bundle_dir)
        assert service.health().status == "healthy"
        service.close()
        health = service.health()
        assert health.status == "failed"
        assert any("closed" in reason for reason in health.reasons)

    def test_exit_swallows_nothing(self, bundle_dir):
        with pytest.raises(RuntimeError, match="sentinel"):
            with AnnotationService.load(bundle_dir) as service:
                raise RuntimeError("sentinel")
        with pytest.raises(ServiceClosed):
            service.annotate_batch([])  # the context manager did close it


# --------------------------------------------------------------------------- #
# RuntimePolicy persistence
# --------------------------------------------------------------------------- #
class TestRuntimePolicyPersistence:
    def test_policy_rides_in_bundle_metadata(self, bundle_dir, tmp_path):
        policy = RuntimePolicy(timeout_s=5.0, max_retries=7, breaker_threshold=4)
        service = AnnotationService.load(bundle_dir, policy=policy)
        saved = service.save(tmp_path / "with-policy")
        service.close()

        manifest = json.loads((saved / "manifest.json").read_text())
        assert manifest["format_version"] == 3  # format unchanged
        assert manifest["runtime_policy"]["max_retries"] == 7

        reloaded = AnnotationService.load(saved)
        assert reloaded.policy == policy
        reloaded.close()

    def test_explicit_policy_overrides_saved(self, bundle_dir, tmp_path):
        service = AnnotationService.load(
            bundle_dir, policy=RuntimePolicy(max_retries=9))
        saved = service.save(tmp_path / "override")
        service.close()
        override = RuntimePolicy(max_retries=0)
        reloaded = AnnotationService.load(saved, policy=override)
        assert reloaded.policy == override
        reloaded.close()

    def test_default_policy_without_metadata(self, bundle_dir):
        service = AnnotationService.load(bundle_dir)
        assert service.policy == RuntimePolicy()
        service.close()


# --------------------------------------------------------------------------- #
# the fault matrix: prepare path, every executor
# --------------------------------------------------------------------------- #
@pytest.mark.chaos
class TestPrepareDegradation:
    """Injected prepare-pool faults: identical annotations, degraded health."""

    @pytest.fixture(params=EXECUTOR_NAMES)
    def inner_name(self, request):
        return request.param

    def _service(self, bundle_dir, inner_name, plan, sleeps=None):
        record = sleeps if sleeps is not None else []
        executor = FaultyExecutor(
            create_executor(inner_name, max_workers=2), plan,
            sleep=record.append,
        )
        return AnnotationService.load(bundle_dir, executor=executor,
                                      policy=CHAOS_POLICY)

    def test_timeout_once(self, bundle_dir, serve_tables, expected, inner_name):
        plan = FaultPlan().fail(TimeoutError("injected hang"), times=1)
        with self._service(bundle_dir, inner_name, plan) as service:
            assert service.annotate_batch(serve_tables) == expected
            stats = service.stats()
            assert stats.retries >= 1
            health = service.health()
            assert health.status == "degraded"

    def test_crash_once(self, bundle_dir, serve_tables, expected, inner_name):
        plan = FaultPlan().crash_worker(times=1)
        with self._service(bundle_dir, inner_name, plan) as service:
            assert service.annotate_batch(serve_tables) == expected
            stats = service.stats()
            assert stats.worker_crashes == 1
            assert stats.retries >= 1
            assert service.health().status == "degraded"
            # The crash was transient: once acknowledged, health recovers.
            service.reset_stats()
            assert service.health().status == "healthy"

    def test_crash_always_falls_back_in_process(self, bundle_dir, serve_tables,
                                                expected, inner_name):
        plan = FaultPlan().crash_worker(times=None)
        with self._service(bundle_dir, inner_name, plan) as service:
            assert service.annotate_batch(serve_tables) == expected
            stats = service.stats()
            assert stats.fallbacks >= 1
            assert stats.breaker_trips >= 1
            health = service.health()
            assert health.status == "degraded"  # answering, not failed
            assert health.breakers.get("prepare:prepare") == "open"
            # Still serving identical results with the breaker open: chunks
            # skip the dead pool entirely and prepare in-process.
            assert service.annotate_batch(serve_tables[:2]) == expected[:2]

    def test_slow_prepare_delays_on_injected_clock(self, bundle_dir,
                                                   serve_tables, expected,
                                                   inner_name):
        sleeps: list[float] = []
        plan = FaultPlan().delay(0.25, times=2)
        with self._service(bundle_dir, inner_name, plan, sleeps) as service:
            assert service.annotate_batch(serve_tables) == expected
        # One chunk per worker, so serial fires one delay and the pooled
        # executors two — every delay lands on the injected clock, not time.
        assert sleeps == [0.25] * len(sleeps)
        assert len(sleeps) == len(plan.fired) >= 1

    def test_failed_when_even_the_fallback_dies(self, bundle_dir, serve_tables,
                                                monkeypatch):
        plan = FaultPlan().crash_worker(times=None)
        with self._service(bundle_dir, "serial", plan) as service:
            monkeypatch.setattr(
                service._local_preparer, "prepare",
                lambda tables: (_ for _ in ()).throw(RuntimeError("no fallback")),
            )
            with pytest.raises(RuntimeError, match="no fallback"):
                service.annotate_batch(serve_tables)
            assert service.health().status == "failed"


# --------------------------------------------------------------------------- #
# the fault matrix: sharded retrieval path
# --------------------------------------------------------------------------- #
@pytest.mark.chaos
class TestShardDegradation:
    """Injected shard faults: identical search results via the local fallback."""

    @pytest.fixture()
    def queries(self, serve_tables):
        cells = [str(cell) for table in serve_tables[:2]
                 for column in table.columns for cell in column.cells[:2]]
        return cells[:8]

    def _sharded(self, bundle_dir, plan, policy=CHAOS_POLICY):
        backend = ServiceBundle.load(bundle_dir).backend
        faulty = FaultyExecutor(create_executor("serial"), plan,
                                sleep=lambda s: None)
        return backend, ShardedBackend(backend, num_shards=3, executor=faulty,
                                       policy=policy)

    def test_shard_timeout_once_is_retried(self, bundle_dir, queries):
        plan = FaultPlan().fail(TimeoutError("hang"), times=1,
                                match=lambda task: task[0] == 1)
        inner, sharded = self._sharded(bundle_dir, plan)
        assert sharded.search_batch(queries, top_k=5) == inner.search_batch(
            queries, top_k=5)
        stats = sharded.resilience_stats()
        assert stats["counters"]["retries"] == 1
        assert stats["breakers"] == {"0": "closed", "1": "closed", "2": "closed"}

    def test_dead_shard_falls_back_locally(self, bundle_dir, queries):
        plan = FaultPlan().fail(RuntimeError("shard 1 down"), times=None,
                                match=lambda task: task[0] == 1)
        inner, sharded = self._sharded(bundle_dir, plan)
        # Twice: first opens the breaker, second skips dispatch entirely.
        for _ in range(2):
            assert (sharded.search_batch(queries, top_k=5)
                    == inner.search_batch(queries, top_k=5))
        stats = sharded.resilience_stats()
        assert stats["counters"]["fallbacks"] == 2
        assert stats["breakers"]["1"] == "open"
        assert stats["breakers"]["0"] == "closed"
        assert stats["breaker_trips"] == 1

    def test_shard_unavailable_when_fallback_fails_too(self, bundle_dir,
                                                       queries, monkeypatch):
        plan = FaultPlan().fail(RuntimeError("down"), times=None,
                                match=lambda task: task[0] == 0)
        _, sharded = self._sharded(bundle_dir, plan)
        monkeypatch.setattr(
            sharded._shard_set, "shard",
            lambda index: (_ for _ in ()).throw(OSError("state gone")),
        )
        with pytest.raises(ShardUnavailable, match="shard 0"):
            sharded.search_batch(queries, top_k=5)

    def test_service_degrades_on_shard_faults(self, bundle_dir, serve_tables,
                                              expected):
        plan = FaultPlan().fail(RuntimeError("shard 2 down"), times=None,
                                match=lambda task: task[0] == 2)
        bundle = ServiceBundle.load(bundle_dir)
        bundle.backend = ShardedBackend(
            bundle.backend, num_shards=3,
            executor=FaultyExecutor(create_executor("serial"), plan,
                                    sleep=lambda s: None),
            policy=CHAOS_POLICY,
        )
        with AnnotationService(bundle) as service:
            assert service.annotate_batch(serve_tables) == expected
            stats = service.stats()
            assert stats.fallbacks >= 1
            health = service.health()
            assert health.status == "degraded"
            assert health.breakers.get("shard:2") == "open"

    def test_bare_policy_none_keeps_the_fast_path(self, bundle_dir, queries):
        inner, sharded = self._sharded(bundle_dir, FaultPlan(), policy=None)
        assert (sharded.search_batch(queries, top_k=5)
                == inner.search_batch(queries, top_k=5))
        assert sharded.resilience_stats() == {
            "counters": {}, "breakers": {}, "breaker_trips": 0,
        }
