"""Unit tests for the micro-batcher: coalescing, budgets, fan-out, drain.

The batcher's contract: every request it dequeues is resolved — with its
slice of the batch result or with the batch's typed error — and ``run()``
returns only after the queue is drained and every in-flight batch has
reported back.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.errors import BreakerOpen
from repro.gateway import AdmissionQueue, Deadline, MicroBatcher, PendingRequest

from tests.gateway.util import FakeClock, make_table


def _pending(clock, budget_s=None, tables=1, tag="t"):
    deadline = (Deadline.never(clock) if budget_s is None
                else Deadline.after(budget_s, clock))
    return PendingRequest(
        tables=[make_table(f"{tag}{index}") for index in range(tables)],
        deadline=deadline,
        future=asyncio.get_running_loop().create_future(),
        enqueued_at=clock(),
    )


def _echo_annotate(record):
    def annotate(tables, budget_s):
        record.append((len(tables), budget_s))
        return [[f"label:{table.table_id}"] for table in tables]
    return annotate


async def _drain(batcher, queue):
    task = asyncio.create_task(batcher.run())
    await asyncio.sleep(0)
    queue.close()
    await asyncio.wait_for(task, 10.0)


class TestCoalescing:
    def test_queued_requests_ride_one_annotate_call(self):
        async def main():
            clock = FakeClock()
            queue = AdmissionQueue(maxsize=8, clock=clock)
            record = []
            batcher = MicroBatcher(_echo_annotate(record), queue,
                                   max_batch=8, max_wait_s=0.0, clock=clock)
            riders = [_pending(clock, tables=2, tag=f"r{i}-") for i in range(3)]
            for pending in riders:
                queue.offer(pending)
            await _drain(batcher, queue)
            assert record == [(6, None)]  # one call, all six tables aboard
            for pending in riders:
                result = pending.future.result()
                assert result == [[f"label:{table.table_id}"]
                                  for table in pending.tables]
            assert batcher.batches == 1
            assert batcher.batched_tables == 6
            assert batcher.max_coalesced == 6
            assert batcher.mean_batch_size == pytest.approx(6.0)
        asyncio.run(main())

    def test_max_batch_splits_the_queue(self):
        async def main():
            clock = FakeClock()
            queue = AdmissionQueue(maxsize=8, clock=clock)
            record = []
            batcher = MicroBatcher(_echo_annotate(record), queue,
                                   max_batch=2, max_wait_s=0.0, clock=clock)
            riders = [_pending(clock, tag=f"r{i}-") for i in range(5)]
            for pending in riders:
                queue.offer(pending)
            await _drain(batcher, queue)
            assert [n for n, _ in record] == [2, 2, 1]
            assert all(pending.future.result() for pending in riders)
        asyncio.run(main())

    def test_budget_is_the_longest_remaining_deadline(self):
        async def main():
            clock = FakeClock()
            queue = AdmissionQueue(maxsize=8, clock=clock)
            record = []
            batcher = MicroBatcher(_echo_annotate(record), queue,
                                   max_batch=8, max_wait_s=0.0, clock=clock)
            queue.offer(_pending(clock, budget_s=0.2, tag="near"))
            queue.offer(_pending(clock, budget_s=4.0, tag="far"))
            await _drain(batcher, queue)
            # The almost-expired rider must not shrink the batch's budget.
            assert record[0][1] == pytest.approx(4.0)
        asyncio.run(main())

    def test_any_unbounded_rider_means_no_budget(self):
        async def main():
            clock = FakeClock()
            queue = AdmissionQueue(maxsize=8, clock=clock)
            record = []
            batcher = MicroBatcher(_echo_annotate(record), queue,
                                   max_batch=8, max_wait_s=0.0, clock=clock)
            queue.offer(_pending(clock, budget_s=1.0))
            queue.offer(_pending(clock, budget_s=None))
            await _drain(batcher, queue)
            assert record[0][1] is None
        asyncio.run(main())


class TestFailureFanOut:
    def test_batch_error_reaches_every_rider(self):
        async def main():
            clock = FakeClock()
            queue = AdmissionQueue(maxsize=8, clock=clock)

            def explode(tables, budget_s):
                raise BreakerOpen("prepare pool is open")

            batcher = MicroBatcher(explode, queue, max_batch=8,
                                   max_wait_s=0.0, clock=clock)
            riders = [_pending(clock, tag=f"r{i}-") for i in range(3)]
            for pending in riders:
                queue.offer(pending)
            await _drain(batcher, queue)
            for pending in riders:
                with pytest.raises(BreakerOpen):
                    pending.future.result()
            assert batcher.batch_errors == 1
            assert batcher.batches == 0
        asyncio.run(main())

    def test_one_failed_batch_does_not_poison_the_next(self):
        async def main():
            clock = FakeClock()
            queue = AdmissionQueue(maxsize=8, clock=clock)
            calls = []

            def flaky(tables, budget_s):
                calls.append(len(tables))
                if len(calls) == 1:
                    raise RuntimeError("transient")
                return [["ok"] for _ in tables]

            batcher = MicroBatcher(flaky, queue, max_batch=1,
                                   max_wait_s=0.0, clock=clock)
            first = _pending(clock, tag="a")
            second = _pending(clock, tag="b")
            queue.offer(first)
            queue.offer(second)
            await _drain(batcher, queue)
            with pytest.raises(RuntimeError):
                first.future.result()
            assert second.future.result() == [["ok"]]
        asyncio.run(main())


class TestConcurrencyAndDrain:
    def test_concurrency_limiter_holds_the_second_batch(self):
        async def main():
            clock = FakeClock()
            queue = AdmissionQueue(maxsize=8, clock=clock)
            started = threading.Event()
            release = threading.Event()
            calls = []

            def gated(tables, budget_s):
                calls.append(len(tables))
                started.set()
                assert release.wait(10.0)
                return [["ok"] for _ in tables]

            batcher = MicroBatcher(gated, queue, max_batch=1, max_wait_s=0.0,
                                   max_concurrent_batches=1, clock=clock)
            first = _pending(clock, tag="a")
            second = _pending(clock, tag="b")
            queue.offer(first)
            queue.offer(second)
            task = asyncio.create_task(batcher.run())
            await asyncio.get_running_loop().run_in_executor(None, started.wait)
            await asyncio.sleep(0.05)
            # The limiter is the backpressure: batch two never dispatches
            # while batch one holds the only slot.
            assert calls == [1]
            release.set()
            queue.close()
            await asyncio.wait_for(task, 10.0)
            assert calls == [1, 1]
            assert first.future.result() == [["ok"]]
            assert second.future.result() == [["ok"]]
        asyncio.run(main())

    def test_run_joins_in_flight_batches_before_returning(self):
        async def main():
            clock = FakeClock()
            queue = AdmissionQueue(maxsize=8, clock=clock)
            started = threading.Event()
            release = threading.Event()

            def gated(tables, budget_s):
                started.set()
                assert release.wait(10.0)
                return [["ok"] for _ in tables]

            batcher = MicroBatcher(gated, queue, max_batch=8,
                                   max_wait_s=0.0, clock=clock)
            pending = _pending(clock, tag="a")
            queue.offer(pending)
            task = asyncio.create_task(batcher.run())
            await asyncio.get_running_loop().run_in_executor(None, started.wait)
            queue.close()
            await asyncio.sleep(0.05)
            assert not task.done()  # drain waits for the in-flight batch
            release.set()
            await asyncio.wait_for(task, 10.0)
            assert pending.future.result() == [["ok"]]
        asyncio.run(main())

    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0}, {"max_concurrent_batches": 0}, {"max_wait_s": -1.0},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        async def main():
            queue = AdmissionQueue(maxsize=2)
            with pytest.raises(ValueError):
                MicroBatcher(lambda tables, budget_s: [], queue, **kwargs)
        asyncio.run(main())
