"""Unit tests for the stdlib HTTP/1.1 slice under the gateway.

Parsing is tested directly against fed ``StreamReader`` bytes — malformed
and over-limit input must raise :class:`HttpError` with the status the
server should answer, never escape as a stray ``ValueError``.  One socket
round trip pins the client and server halves against each other.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.gateway import HttpError, HttpResponse, http_request
from repro.gateway.http import (
    MAX_HEADER_BYTES,
    read_request,
    write_response,
)


def _reader_with(raw: bytes, limit: int = MAX_HEADER_BYTES) -> asyncio.StreamReader:
    reader = asyncio.StreamReader(limit=limit)
    reader.feed_data(raw)
    reader.feed_eof()
    return reader


def _parse(raw: bytes, **kwargs):
    async def main():
        return await read_request(_reader_with(raw), **kwargs)
    return asyncio.run(main())


def _parse_error(raw: bytes, **kwargs) -> HttpError:
    with pytest.raises(HttpError) as info:
        _parse(raw, **kwargs)
    return info.value


class TestReadRequest:
    def test_post_with_body(self):
        request = _parse(
            b"POST /annotate?mode=fast HTTP/1.1\r\n"
            b"Host: gateway\r\n"
            b"X-Deadline-Ms: 250\r\n"
            b"Content-Length: 14\r\n"
            b"\r\n"
            b'{"columns":[]}'
        )
        assert request.method == "POST"
        assert request.path == "/annotate"
        assert request.query == {"mode": "fast"}
        # Header names are lower-cased: lookups are case-insensitive.
        assert request.headers["x-deadline-ms"] == "250"
        assert request.json() == {"columns": []}

    def test_get_without_body(self):
        request = _parse(b"GET /healthz HTTP/1.1\r\nHost: g\r\n\r\n")
        assert (request.method, request.path, request.body) == ("GET", "/healthz", b"")

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_truncated_head_is_400(self):
        assert _parse_error(b"POST /annotate HTTP/1.1\r\nHost:").status == 400

    def test_truncated_body_is_400(self):
        error = _parse_error(
            b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"
        )
        assert error.status == 400
        assert "mid-body" in error.detail

    def test_malformed_request_line_is_400(self):
        assert _parse_error(b"NONSENSE\r\n\r\n").status == 400

    def test_non_http_protocol_is_400(self):
        assert _parse_error(b"GET / SPDY/3\r\n\r\n").status == 400

    def test_malformed_header_line_is_400(self):
        assert _parse_error(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").status == 400

    @pytest.mark.parametrize("value", ["ten", "-4"])
    def test_bad_content_length_is_400(self, value):
        raw = f"POST /x HTTP/1.1\r\nContent-Length: {value}\r\n\r\n".encode()
        assert _parse_error(raw).status == 400

    def test_oversized_body_is_413(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 1000\r\n\r\n" + b"x" * 1000
        error = _parse_error(raw, max_body_bytes=64)
        assert error.status == 413

    def test_oversized_header_block_is_413(self):
        raw = (b"GET / HTTP/1.1\r\nX-Big: " + b"x" * 4096 + b"\r\n\r\n")

        async def main():
            with pytest.raises(HttpError) as info:
                await read_request(_reader_with(raw, limit=256))
            assert info.value.status == 413
        asyncio.run(main())

    def test_chunked_body_is_411(self):
        error = _parse_error(
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        )
        assert error.status == 411


class _SinkWriter:
    def __init__(self):
        self.data = bytearray()

    def write(self, chunk: bytes) -> None:
        self.data.extend(chunk)

    async def drain(self) -> None:
        pass


class TestWriteResponse:
    def _render(self, response, keep_alive=True) -> bytes:
        async def main():
            sink = _SinkWriter()
            await write_response(sink, response, keep_alive=keep_alive)
            return bytes(sink.data)
        return asyncio.run(main())

    def test_status_line_headers_and_body(self):
        raw = self._render(HttpResponse.from_json({"ok": True}, status=200))
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "content-type: application/json" in lines
        assert f"content-length: {len(body)}" in lines
        assert "connection: keep-alive" in lines
        assert json.loads(body) == {"ok": True}

    def test_close_and_extra_headers(self):
        response = HttpResponse.from_json(
            {"error": "GatewayOverloaded"}, status=503,
            headers={"Retry-After": "1"},
        )
        raw = self._render(response, keep_alive=False).decode()
        assert raw.startswith("HTTP/1.1 503 Service Unavailable")
        assert "connection: close" in raw
        assert "retry-after: 1" in raw

    def test_unknown_status_still_renders(self):
        raw = self._render(HttpResponse.from_text("odd", status=418))
        assert raw.startswith(b"HTTP/1.1 418 Unknown")


class TestSocketRoundTrip:
    def test_client_and_server_halves_agree(self):
        async def main():
            async def handler(reader, writer):
                request = await read_request(reader)
                payload = {"echo": request.json(), "path": request.path}
                await write_response(writer, HttpResponse.from_json(payload))
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                response = await http_request(
                    "127.0.0.1", port, "POST", "/annotate",
                    json_body={"table_id": "t1"},
                )
            finally:
                server.close()
                await server.wait_closed()
            assert response.status == 200
            assert response.json() == {"echo": {"table_id": "t1"},
                                       "path": "/annotate"}
        asyncio.run(main())

    def test_request_json_rejects_junk(self):
        request = _parse(
            b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\n{nope"
        )
        with pytest.raises(HttpError) as info:
            request.json()
        assert info.value.status == 400
