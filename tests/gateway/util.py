"""Shared helpers for the gateway suite: a scripted service and tiny clients.

The gateway only touches a narrow serving surface (``annotate_batch``,
``stats``, ``health``, ``close``, ``max_batch``, ``policy``), so most of the
suite runs against :class:`FakeService` — a scriptable stand-in that records
every call — and reserves the real trained service for the chaos tests.
"""

from __future__ import annotations

import contextlib
import threading

from repro.data.table import Column, Table
from repro.gateway import Gateway, GatewayConfig, HttpConnection


class FakeClock:
    """A manually-advanced monotonic clock for deterministic deadline tests."""

    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class _FakeStats:
    def to_dict(self) -> dict:
        return {"requests": 0, "tables": 0, "cache_hits": 0}


class _FakeHealth:
    def __init__(self, status: str):
        self.status = status

    def to_dict(self) -> dict:
        return {"status": self.status, "breakers": {}}


class FakeService:
    """The serving surface the gateway needs, scripted for tests.

    ``annotate`` overrides the batch behaviour: a callable taking
    ``(tables, budget_s)``; raise from it to exercise the error mapping, or
    block on an event to hold a batch in flight.  Every call is recorded in
    ``calls`` as ``(n_tables, budget_s)``.
    """

    def __init__(self, annotate=None, health_status: str = "healthy",
                 policy=None, max_batch: int = 16):
        self.calls: list[tuple[int, float | None]] = []
        self.closed = False
        self.max_batch = max_batch
        self.policy = policy
        self._annotate = annotate
        self._health_status = health_status
        self._lock = threading.Lock()

    def annotate_batch(self, tables, budget_s=None):
        with self._lock:
            self.calls.append((len(tables), budget_s))
        if self._annotate is not None:
            return self._annotate(tables, budget_s)
        return [[f"label:{column.name}" for column in table.columns]
                for table in tables]

    def stats(self) -> _FakeStats:
        return _FakeStats()

    def health(self) -> _FakeHealth:
        return _FakeHealth(self._health_status)

    def close(self) -> None:
        self.closed = True


def make_table(table_id: str = "t", columns: int = 2) -> Table:
    return Table(table_id=table_id, columns=[
        Column(name=f"c{index}", cells=["alpha", "beta"])
        for index in range(columns)
    ])


def table_payload(table: Table) -> dict:
    return {
        "table_id": table.table_id,
        "columns": [{"name": column.name, "cells": list(column.cells)}
                    for column in table.columns],
    }


@contextlib.asynccontextmanager
async def running_gateway(service, **config_kwargs):
    """Start a gateway on an ephemeral port; drain it on the way out."""
    config_kwargs.setdefault("port", 0)
    gateway = Gateway(service, GatewayConfig(**config_kwargs))
    await gateway.start()
    try:
        yield gateway
    finally:
        await gateway.shutdown()


async def post_annotate(gateway, payload, headers=None):
    async with await HttpConnection.open("127.0.0.1", gateway.port) as conn:
        return await conn.request("POST", "/annotate", json_body=payload,
                                  headers=headers)


async def get(gateway, path):
    async with await HttpConnection.open("127.0.0.1", gateway.port) as conn:
        return await conn.request("GET", path)
