"""Gateway chaos suite: injected faults under real traffic, zero silent drops.

The invariant, end to end: **every request the gateway accepts is answered**
— 200 with bitwise-correct predictions, or a typed 5xx — no matter what
crashes, stalls or floods the service underneath.  Faults are injected
deterministically with :class:`~repro.runtime.FaultPlan`, mirroring the
service-level suite in ``tests/serve/test_degradation.py``; the service is
a real trained one, so the crash/retry/fallback machinery on the other side
of the gateway is the production path, not a stub.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.annotator import KGLinkAnnotator, KGLinkConfig
from repro.data.corpus import TableCorpus
from repro.gateway import DEADLINE_HEADER, Gateway, GatewayConfig
from repro.runtime import FaultPlan, FaultyExecutor, RuntimePolicy, create_executor
from repro.serve import AnnotationService, ServiceBundle

from tests.gateway.util import get, post_annotate, running_gateway, table_payload

pytestmark = pytest.mark.chaos

TINY_CONFIG = KGLinkConfig(
    epochs=1, batch_size=4, learning_rate=1e-3, pretrain_steps=2,
    hidden_size=32, num_layers=1, num_heads=2, intermediate_size=48,
    top_k_rows=5, max_tokens_per_column=12, vocab_size=900,
    max_position_embeddings=140, max_feature_tokens=8,
)

CHAOS_POLICY = RuntimePolicy(timeout_s=None, max_retries=1,
                             breaker_threshold=2, breaker_reset_s=60.0)


@pytest.fixture(scope="module")
def fitted(graph, linker, semtab_splits):
    train = TableCorpus("train", semtab_splits.train.tables[:8],
                        semtab_splits.train.label_vocabulary)
    annotator = KGLinkAnnotator(graph, TINY_CONFIG, linker=linker)
    annotator.fit(train)
    return annotator


@pytest.fixture(scope="module")
def serve_tables(semtab_splits):
    return semtab_splits.test.tables[:6]


@pytest.fixture(scope="module")
def bundle_dir(fitted, tmp_path_factory):
    return ServiceBundle.from_annotator(fitted).save(
        tmp_path_factory.mktemp("bundles") / "svc"
    )


@pytest.fixture(scope="module")
def expected(bundle_dir, serve_tables):
    """The fault-free annotations every degraded run must reproduce exactly."""
    service = AnnotationService.load(bundle_dir)
    try:
        return service.annotate_batch(serve_tables)
    finally:
        service.close()


def _faulty_service(bundle_dir, plan, sleeps=None):
    record = sleeps if sleeps is not None else []
    executor = FaultyExecutor(create_executor("thread", max_workers=2), plan,
                              sleep=record.append)
    return AnnotationService.load(bundle_dir, executor=executor,
                                  policy=CHAOS_POLICY)


def _accounted(stats: dict) -> bool:
    answered = (stats["completed"] + stats["errors"]
                + stats["rejected_draining"] + stats["expired_at_admission"]
                + stats["expired_in_flight"])
    return stats["requests"] == answered


async def _fire(gateway, serve_tables, headers=None):
    return await asyncio.gather(*[
        post_annotate(gateway, table_payload(table), headers=headers)
        for table in serve_tables
    ])


class TestFaultsUnderTraffic:
    def test_worker_crash_mid_batch_answers_every_rider(self, bundle_dir,
                                                        serve_tables, expected):
        plan = FaultPlan().crash_worker(times=1)
        with _faulty_service(bundle_dir, plan) as service:
            async def main():
                async with running_gateway(service, max_wait_ms=100.0,
                                           max_batch=16) as gateway:
                    responses = await asyncio.wait_for(
                        _fire(gateway, serve_tables), 60.0
                    )
                    statuses = [response.status for response in responses]
                    predictions = [response.json().get("predictions")
                                   for response in responses]
                    stats = gateway.stats()
                    return statuses, predictions, stats
            statuses, predictions, stats = asyncio.run(main())
            # The crash was retried away behind the gateway: same answers.
            assert statuses == [200] * len(serve_tables)
            assert predictions == expected
            assert _accounted(stats)
            assert service.stats().worker_crashes == 1
            assert service.health().status == "degraded"

    def test_dead_pool_degrades_but_keeps_answering(self, bundle_dir,
                                                    serve_tables, expected):
        plan = FaultPlan().crash_worker(times=None)  # permanently broken
        with _faulty_service(bundle_dir, plan) as service:
            async def main():
                async with running_gateway(service, max_wait_ms=50.0) as gateway:
                    responses = await asyncio.wait_for(
                        _fire(gateway, serve_tables), 60.0
                    )
                    health = (await post_annotate(gateway, table_payload(
                        serve_tables[0]))).status  # still serving afterwards
                    return [r.status for r in responses], \
                        [r.json().get("predictions") for r in responses], health
            statuses, predictions, followup = asyncio.run(main())
            # In-process fallback keeps every answer identical at 200.
            assert statuses == [200] * len(serve_tables)
            assert predictions == expected
            assert followup == 200
            assert service.stats().fallbacks >= 1
            assert service.health().status == "degraded"

    def test_slow_prepare_delays_on_injected_clock_only(self, bundle_dir,
                                                        serve_tables, expected):
        sleeps: list[float] = []
        plan = FaultPlan().delay(0.5, times=2)
        with _faulty_service(bundle_dir, plan, sleeps) as service:
            async def main():
                async with running_gateway(service, max_wait_ms=50.0) as gateway:
                    return await asyncio.wait_for(
                        _fire(gateway, serve_tables), 60.0
                    )
            responses = asyncio.run(main())
            assert [r.status for r in responses] == [200] * len(serve_tables)
            assert [r.json().get("predictions") for r in responses] == expected
        assert sleeps == [0.5] * len(sleeps)
        assert len(sleeps) >= 1  # the slowdown fired, on the injected clock

    def test_healthz_reflects_degradation_not_death(self, bundle_dir,
                                                    serve_tables):
        plan = FaultPlan().crash_worker(times=1)
        with _faulty_service(bundle_dir, plan) as service:
            async def main():
                async with running_gateway(service, max_wait_ms=50.0) as gateway:
                    await _fire(gateway, serve_tables[:2])
                    return await get(gateway, "/healthz")
            response = asyncio.run(main())
            # Degraded is still serving: 200, with the status spelled out.
            assert response.status == 200
            assert response.json()["status"] == "degraded"


class TestBurstOverload:
    def test_overload_sheds_typed_and_accounts_for_everything(self, bundle_dir,
                                                              serve_tables):
        service = AnnotationService.load(bundle_dir, policy=CHAOS_POLICY)
        try:
            async def main():
                async with running_gateway(service, max_batch=1, max_queue=2,
                                           max_concurrent_batches=1,
                                           max_wait_ms=0.0) as gateway:
                    burst = [
                        asyncio.create_task(post_annotate(
                            gateway,
                            table_payload(serve_tables[i % len(serve_tables)]),
                            headers={DEADLINE_HEADER: "30000"},
                        ))
                        for i in range(12)
                    ]
                    responses = await asyncio.wait_for(
                        asyncio.gather(*burst), 120.0
                    )
                    return responses, gateway.stats()
            responses, stats = asyncio.run(main())
            statuses = [response.status for response in responses]
            # Nobody hangs, nobody vanishes: 12 in, 12 typed answers out.
            assert len(statuses) == 12
            assert set(statuses) <= {200, 503, 504}
            assert statuses.count(200) >= 1
            assert statuses.count(503) >= 1  # the bound really shed
            for response in responses:
                if response.status == 503:
                    assert response.headers.get("retry-after")
                    assert response.json()["error"] == "GatewayOverloaded"
            assert stats["requests"] == 12
            assert _accounted(stats)
        finally:
            service.close()


class TestDrainUnderTraffic:
    def test_sigterm_style_drain_answers_admitted_work(self, bundle_dir,
                                                       serve_tables):
        service = AnnotationService.load(bundle_dir, policy=CHAOS_POLICY)
        started = threading.Event()
        inner_annotate = service.annotate_batch

        def slow_annotate(tables, budget_s=None):
            started.set()
            return inner_annotate(tables, budget_s=budget_s)

        service_proxy = _Proxy(service, slow_annotate)

        async def main():
            gateway = Gateway(service_proxy, GatewayConfig(
                port=0, max_batch=2, max_wait_ms=10.0,
            ))
            await gateway.start()
            in_flight = [
                asyncio.create_task(post_annotate(
                    gateway, table_payload(table)))
                for table in serve_tables[:4]
            ]
            await asyncio.get_running_loop().run_in_executor(None, started.wait)
            await asyncio.wait_for(gateway.shutdown(close_service=True), 60.0)
            responses = await asyncio.wait_for(
                asyncio.gather(*in_flight), 60.0
            )
            return responses, gateway.stats(), gateway.state

        responses, stats, state = asyncio.run(main())
        # Everything admitted before the drain is answered — 200 or a typed
        # draining 503 for the stragglers that missed admission — and the
        # service is torn down only afterwards.
        assert state == "closed"
        assert {r.status for r in responses} <= {200, 503}
        assert any(r.status == 200 for r in responses)
        assert _accounted(stats)
        assert service._closed  # shutdown(close_service=True) reached it


class _Proxy:
    """A service wrapper that lets one test interpose on ``annotate_batch``."""

    def __init__(self, service, annotate):
        self._service = service
        self._annotate = annotate

    def annotate_batch(self, tables, budget_s=None):
        return self._annotate(tables, budget_s=budget_s)

    def __getattr__(self, name):
        return getattr(self._service, name)
