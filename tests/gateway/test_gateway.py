"""Gateway tests over real sockets with a scripted service.

Covers the endpoint surface, the typed error→status mapping, deadline
edge cases (expired at admission / while queued / mid-batch — each a typed
timeout, never a hang), overload shedding with full accounting, and the
graceful-drain contract.
"""

from __future__ import annotations

import asyncio
import threading
import time
from types import SimpleNamespace

import pytest

from repro.core.errors import (
    BreakerOpen,
    BundleCorrupted,
    DeadlineExceeded,
    GatewayOverloaded,
    ServiceClosed,
    ServingError,
)
from repro.gateway import DEADLINE_HEADER, Gateway, GatewayConfig, status_for
from repro.gateway.http import HttpConnection

from tests.gateway.util import (
    FakeService,
    get,
    make_table,
    post_annotate,
    running_gateway,
    table_payload,
)


def _assert_accounting(stats: dict) -> None:
    """Every request the handler saw is accounted for — no silent drops."""
    answered = (stats["completed"] + stats["errors"]
                + stats["rejected_draining"] + stats["expired_at_admission"]
                + stats["expired_in_flight"])
    assert stats["requests"] == answered


class TestAnnotateEndpoint:
    def test_single_table_round_trip(self):
        async def main():
            service = FakeService()
            async with running_gateway(service) as gateway:
                response = await post_annotate(
                    gateway, table_payload(make_table("t1", columns=3))
                )
                assert response.status == 200
                payload = response.json()
                assert payload["table_id"] == "t1"
                assert payload["predictions"] == ["label:c0", "label:c1", "label:c2"]
                assert gateway.stats()["completed"] == 1
        asyncio.run(main())

    def test_list_payload_preserves_order(self):
        async def main():
            service = FakeService()
            tables = [make_table(f"t{index}") for index in range(3)]
            async with running_gateway(service) as gateway:
                response = await post_annotate(
                    gateway, [table_payload(table) for table in tables]
                )
                assert response.status == 200
                results = response.json()["results"]
                assert [entry["table_id"] for entry in results] == ["t0", "t1", "t2"]
            assert service.calls == [(3, None)]
        asyncio.run(main())

    def test_concurrent_requests_coalesce_into_one_batch(self):
        async def main():
            service = FakeService()
            async with running_gateway(service, max_wait_ms=100.0,
                                       max_batch=16) as gateway:
                responses = await asyncio.gather(*[
                    post_annotate(gateway, table_payload(make_table(f"t{i}")))
                    for i in range(8)
                ])
                assert [r.status for r in responses] == [200] * 8
                stats = gateway.stats()
                assert stats["batches"] == 1
                assert stats["max_batch_size"] == 8
            assert service.calls == [(8, None)]  # eight requests, one PLM trip
        asyncio.run(main())

    def test_missing_table_id_is_generated(self):
        async def main():
            async with running_gateway(FakeService()) as gateway:
                response = await post_annotate(
                    gateway, {"columns": [{"name": "c", "cells": ["x"]}]}
                )
                assert response.status == 200
                assert response.json()["table_id"].startswith("req-")
        asyncio.run(main())

    @pytest.mark.parametrize("payload", [
        [], "not a table", 42,
        {"columns": "nope"},
        {"columns": [{"name": "c"}]},          # no cells
        [{"table_id": "t"}],                   # no columns
    ])
    def test_malformed_payloads_are_400(self, payload):
        async def main():
            async with running_gateway(FakeService()) as gateway:
                response = await post_annotate(gateway, payload)
                assert response.status == 400
                assert response.json()["error"] in ("ValueError", "HttpError")
                _assert_accounting(gateway.stats())
        asyncio.run(main())

    def test_invalid_deadline_header_is_400(self):
        async def main():
            async with running_gateway(FakeService()) as gateway:
                response = await post_annotate(
                    gateway, table_payload(make_table()),
                    headers={DEADLINE_HEADER: "soon"},
                )
                assert response.status == 400
                assert "x-deadline-ms" in response.json()["detail"]
        asyncio.run(main())


class TestRouting:
    def test_unknown_path_is_404(self):
        async def main():
            async with running_gateway(FakeService()) as gateway:
                assert (await get(gateway, "/nope")).status == 404
        asyncio.run(main())

    def test_wrong_method_is_405(self):
        async def main():
            async with running_gateway(FakeService()) as gateway:
                assert (await get(gateway, "/annotate")).status == 405
                port = gateway.port
                async with await HttpConnection.open("127.0.0.1", port) as conn:
                    response = await conn.request("POST", "/healthz",
                                                  json_body={})
                assert response.status == 405
        asyncio.run(main())

    def test_keep_alive_serves_many_requests_per_connection(self):
        async def main():
            async with running_gateway(FakeService()) as gateway:
                port = gateway.port
                async with await HttpConnection.open("127.0.0.1", port) as conn:
                    for index in range(3):
                        response = await conn.request(
                            "POST", "/annotate",
                            json_body=table_payload(make_table(f"t{index}")),
                        )
                        assert response.status == 200
                assert gateway.stats()["completed"] == 3
        asyncio.run(main())


class TestErrorMapping:
    @pytest.mark.parametrize("error, status", [
        (DeadlineExceeded("too slow"), 504),
        (GatewayOverloaded("shed"), 503),
        (BreakerOpen("prepare pool open"), 503),
        (ServiceClosed("closed"), 410),
        (BundleCorrupted("bad digest"), 500),
        (ServingError("other"), 500),
        (ValueError("junk"), 400),
        (RuntimeError("surprise"), 500),
    ])
    def test_status_for_taxonomy(self, error, status):
        assert status_for(error) == status

    @pytest.mark.parametrize("error, status, name", [
        (BreakerOpen("prepare pool open"), 503, "BreakerOpen"),
        (ServiceClosed("service is closed"), 410, "ServiceClosed"),
        (BundleCorrupted("digest mismatch"), 500, "BundleCorrupted"),
        (DeadlineExceeded("budget exhausted"), 504, "DeadlineExceeded"),
    ])
    def test_service_failures_map_onto_statuses(self, error, status, name):
        async def main():
            def explode(tables, budget_s):
                raise error

            async with running_gateway(FakeService(annotate=explode)) as gateway:
                response = await post_annotate(
                    gateway, table_payload(make_table())
                )
                assert response.status == status
                payload = response.json()
                assert payload["error"] == name
                assert str(error) in payload["detail"]
                _assert_accounting(gateway.stats())
        asyncio.run(main())

    def test_503_carries_retry_after(self):
        async def main():
            def explode(tables, budget_s):
                raise BreakerOpen("open")

            async with running_gateway(FakeService(annotate=explode),
                                       retry_after_s=7.0) as gateway:
                response = await post_annotate(
                    gateway, table_payload(make_table())
                )
                assert response.status == 503
                assert response.headers["retry-after"] == "7"
        asyncio.run(main())


class TestDeadlines:
    def test_expired_at_admission_is_504_before_any_work(self):
        async def main():
            service = FakeService()
            async with running_gateway(service) as gateway:
                response = await post_annotate(
                    gateway, table_payload(make_table()),
                    headers={DEADLINE_HEADER: "-10"},
                )
                assert response.status == 504
                assert "admission" in response.json()["detail"]
                stats = gateway.stats()
                assert stats["expired_at_admission"] == 1
                _assert_accounting(stats)
            assert service.calls == []  # dead work never reached the service
        asyncio.run(main())

    def test_deadline_shorter_than_one_batch_is_504_not_a_hang(self):
        async def main():
            release = threading.Event()

            def slow(tables, budget_s):
                assert release.wait(10.0)
                return [["late"] for _ in tables]

            service = FakeService(annotate=slow)
            async with running_gateway(service) as gateway:
                response = await asyncio.wait_for(
                    post_annotate(gateway, table_payload(make_table()),
                                  headers={DEADLINE_HEADER: "80"}),
                    5.0,
                )
                assert response.status == 504
                assert "micro-batch" in response.json()["detail"]
                stats = gateway.stats()
                assert stats["expired_in_flight"] == 1
                _assert_accounting(stats)
                release.set()  # let the stray batch finish before drain
        asyncio.run(main())

    def test_deadline_expiring_while_queued_is_504_not_a_hang(self):
        async def main():
            release = threading.Event()

            def gated(tables, budget_s):
                assert release.wait(10.0)
                return [["ok"] for _ in tables]

            service = FakeService(annotate=gated)
            async with running_gateway(service, max_batch=1,
                                       max_concurrent_batches=1,
                                       max_wait_ms=0.0) as gateway:
                hog = asyncio.create_task(
                    post_annotate(gateway, table_payload(make_table("hog")))
                )
                await asyncio.sleep(0.1)  # hog is in flight, holding the slot
                doomed = asyncio.create_task(
                    post_annotate(gateway, table_payload(make_table("doomed")),
                                  headers={DEADLINE_HEADER: "60"}),
                )
                response = await asyncio.wait_for(doomed, 5.0)
                assert response.status == 504  # expired queued, answered anyway
                release.set()
                assert (await asyncio.wait_for(hog, 5.0)).status == 200
                stats = gateway.stats()
                assert stats["shed_expired"] + stats["expired_in_flight"] >= 1
                _assert_accounting(stats)
        asyncio.run(main())

    def test_budget_rides_into_the_service(self):
        async def main():
            service = FakeService()
            async with running_gateway(service) as gateway:
                response = await post_annotate(
                    gateway, table_payload(make_table()),
                    headers={DEADLINE_HEADER: "5000"},
                )
                assert response.status == 200
            (count, budget_s), = service.calls
            assert count == 1
            assert budget_s == pytest.approx(5.0, abs=0.5)
        asyncio.run(main())

    def test_default_deadline_comes_from_the_service_policy(self):
        async def main():
            service = FakeService(policy=SimpleNamespace(timeout_s=0.08))

            def slow(tables, budget_s):
                time.sleep(0.5)
                return [["late"] for _ in tables]

            service._annotate = slow
            async with running_gateway(service) as gateway:
                assert gateway.default_deadline_ms() == pytest.approx(80.0)
                response = await asyncio.wait_for(
                    post_annotate(gateway, table_payload(make_table())), 5.0
                )
                assert response.status == 504  # header-less, policy bounded
        asyncio.run(main())

    def test_configured_default_overrides_policy(self):
        async def main():
            service = FakeService(policy=SimpleNamespace(timeout_s=0.01))
            async with running_gateway(service,
                                       default_deadline_ms=9000.0) as gateway:
                assert gateway.default_deadline_ms() == 9000.0
                response = await post_annotate(
                    gateway, table_payload(make_table())
                )
                assert response.status == 200
        asyncio.run(main())

    def test_zero_default_disables_deadlines(self):
        async def main():
            service = FakeService(policy=SimpleNamespace(timeout_s=0.01))
            async with running_gateway(service,
                                       default_deadline_ms=0.0) as gateway:
                assert gateway.default_deadline_ms() is None
                response = await post_annotate(
                    gateway, table_payload(make_table())
                )
                assert response.status == 200
            assert service.calls == [(1, None)]
        asyncio.run(main())


class TestOverload:
    def test_burst_beyond_queue_is_shed_and_fully_accounted(self):
        async def main():
            release = threading.Event()

            def gated(tables, budget_s):
                assert release.wait(10.0)
                return [["ok"] for _ in tables]

            service = FakeService(annotate=gated)
            async with running_gateway(service, max_batch=1, max_queue=1,
                                       max_concurrent_batches=1,
                                       max_wait_ms=0.0) as gateway:
                burst = [
                    asyncio.create_task(
                        post_annotate(gateway,
                                      table_payload(make_table(f"t{index}")))
                    )
                    for index in range(8)
                ]
                await asyncio.sleep(0.2)  # the burst lands on a held batcher
                release.set()
                responses = await asyncio.wait_for(asyncio.gather(*burst), 15.0)
                statuses = sorted(response.status for response in responses)
                assert set(statuses) <= {200, 503}
                assert statuses.count(200) >= 1
                assert statuses.count(503) >= 1  # the bound actually shed
                shed = [r for r in responses if r.status == 503]
                assert all(r.headers.get("retry-after") for r in shed)
                assert all(r.json()["error"] == "GatewayOverloaded"
                           for r in shed)
                stats = gateway.stats()
                assert stats["requests"] == 8
                assert stats["shed_queue_full"] >= 1
                _assert_accounting(stats)
        asyncio.run(main())


class TestDrain:
    def test_drain_answers_in_flight_and_refuses_new_work(self):
        async def main():
            started = threading.Event()
            release = threading.Event()

            def gated(tables, budget_s):
                started.set()
                assert release.wait(10.0)
                return [["ok"] for _ in tables]

            service = FakeService(annotate=gated)
            gateway = Gateway(service, GatewayConfig(port=0))
            await gateway.start()
            port = gateway.port
            # Pre-open a connection: the listener closes once drain begins.
            straggler = await HttpConnection.open("127.0.0.1", port)
            in_flight = asyncio.create_task(
                post_annotate(gateway, table_payload(make_table("inflight")))
            )
            await asyncio.get_running_loop().run_in_executor(None, started.wait)
            drain = asyncio.create_task(gateway.shutdown())
            await asyncio.sleep(0.1)
            assert gateway.state == "draining"
            late = await straggler.request(
                "POST", "/annotate", json_body=table_payload(make_table("late"))
            )
            assert late.status == 503  # draining refuses new work, loudly
            assert "draining" in late.json()["detail"]
            release.set()
            response = await asyncio.wait_for(in_flight, 10.0)
            assert response.status == 200  # admitted before drain → answered
            await asyncio.wait_for(drain, 10.0)
            assert gateway.state == "closed"
            assert not service.closed  # close_service defaults to False
            stats = gateway.stats()
            assert stats["rejected_draining"] == 1
            _assert_accounting(stats)
            await straggler.aclose()
        asyncio.run(main())

    def test_shutdown_can_close_the_service(self):
        async def main():
            service = FakeService()
            gateway = Gateway(service, GatewayConfig(port=0))
            await gateway.start()
            await gateway.shutdown(close_service=True)
            assert service.closed
        asyncio.run(main())

    def test_shutdown_is_idempotent_and_concurrent_safe(self):
        async def main():
            gateway = Gateway(FakeService(), GatewayConfig(port=0))
            await gateway.start()
            await asyncio.gather(gateway.shutdown(), gateway.shutdown())
            await gateway.shutdown()
            assert gateway.state == "closed"
        asyncio.run(main())

    def test_shutdown_before_start_just_closes(self):
        async def main():
            gateway = Gateway(FakeService())
            await gateway.shutdown()
            assert gateway.state == "closed"
        asyncio.run(main())

    def test_request_shutdown_drains_and_closes_the_service(self):
        async def main():
            service = FakeService()
            gateway = Gateway(service, GatewayConfig(port=0))
            await gateway.start()
            gateway.request_shutdown()  # the SIGTERM path, minus the signal
            await asyncio.wait_for(gateway._finished.wait(), 10.0)
            assert gateway.state == "closed"
            assert service.closed
        asyncio.run(main())


class TestLifecycle:
    def test_port_requires_start(self):
        gateway = Gateway(FakeService())
        with pytest.raises(RuntimeError, match="not started"):
            gateway.port

    def test_double_start_rejected(self):
        async def main():
            async with running_gateway(FakeService()) as gateway:
                with pytest.raises(RuntimeError, match="already serving"):
                    await gateway.start()
        asyncio.run(main())

    def test_async_context_manager_drains(self):
        async def main():
            async with Gateway(FakeService(), GatewayConfig(port=0)) as gateway:
                assert gateway.state == "serving"
            assert gateway.state == "closed"
        asyncio.run(main())


class TestIntrospection:
    def test_healthz_serving_and_healthy_is_200(self):
        async def main():
            async with running_gateway(FakeService()) as gateway:
                response = await get(gateway, "/healthz")
                assert response.status == 200
                payload = response.json()
                assert payload["status"] == "healthy"
                assert payload["gateway"] == "serving"
        asyncio.run(main())

    def test_healthz_failed_service_is_503(self):
        async def main():
            service = FakeService(health_status="failed")
            async with running_gateway(service) as gateway:
                response = await get(gateway, "/healthz")
                assert response.status == 503
                assert response.json()["status"] == "failed"
        asyncio.run(main())

    def test_stats_endpoint_merges_gateway_and_service(self):
        async def main():
            async with running_gateway(FakeService()) as gateway:
                await post_annotate(gateway, table_payload(make_table()))
                payload = (await get(gateway, "/stats")).json()
                assert payload["gateway"]["completed"] == 1
                assert payload["gateway"]["state"] == "serving"
                assert payload["gateway"]["batches"] == 1
                assert "requests" in payload["service"]
        asyncio.run(main())

    def test_metrics_exposition_format(self):
        async def main():
            async with running_gateway(FakeService()) as gateway:
                await post_annotate(gateway, table_payload(make_table()))
                response = await get(gateway, "/metrics")
                assert response.status == 200
                text = response.body.decode()
                assert "# TYPE kglink_gateway_requests gauge" in text
                assert "kglink_gateway_completed 1" in text
                assert "kglink_service_requests" in text
        asyncio.run(main())
