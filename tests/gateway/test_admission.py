"""Unit tests for deadlines and the shedding admission queue.

The overload policy under test: bounded intake, oldest-deadline-first
shedding on overflow (the victim may be the incoming request), and
expired-at-dequeue shedding so the PLM never sees dead work.  The clock is
injected everywhere, so nothing here sleeps for correctness.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.errors import DeadlineExceeded, GatewayOverloaded
from repro.gateway import AdmissionQueue, Deadline, PendingRequest

from tests.gateway.util import FakeClock, make_table


class TestDeadline:
    def test_never_is_unbounded(self):
        clock = FakeClock()
        deadline = Deadline.never(clock)
        clock.advance(1e9)
        assert deadline.remaining_s() == float("inf")
        assert not deadline.expired()
        assert deadline.sort_key() == float("inf")

    def test_after_counts_down_and_expires(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock)
        assert deadline.remaining_s() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining_s() == pytest.approx(0.5)
        assert not deadline.expired()
        clock.advance(1.0)
        assert deadline.expired()
        assert deadline.remaining_s() == pytest.approx(-0.5)

    def test_header_absent_uses_default(self):
        clock = FakeClock()
        deadline = Deadline.from_header(None, default_ms=250.0, clock=clock)
        assert deadline.remaining_s() == pytest.approx(0.25)

    def test_header_absent_without_default_is_unbounded(self):
        assert Deadline.from_header(None, clock=FakeClock()).at_s is None

    def test_header_value_wins_over_default(self):
        clock = FakeClock()
        deadline = Deadline.from_header("1500", default_ms=10.0, clock=clock)
        assert deadline.remaining_s() == pytest.approx(1.5)

    def test_negative_header_is_already_expired(self):
        assert Deadline.from_header("-5", clock=FakeClock()).expired()

    @pytest.mark.parametrize("junk", ["soon", "", "12ms", "nan", "inf", "-inf"])
    def test_junk_header_raises_value_error(self, junk):
        with pytest.raises(ValueError, match="x-deadline-ms"):
            Deadline.from_header(junk, clock=FakeClock())

    def test_earlier_deadline_sorts_first(self):
        clock = FakeClock()
        near = Deadline.after(1.0, clock)
        far = Deadline.after(9.0, clock)
        never = Deadline.never(clock)
        ordered = sorted([never, far, near], key=Deadline.sort_key)
        assert ordered == [near, far, never]


def _pending(clock, budget_s=None, tables=1):
    deadline = (Deadline.never(clock) if budget_s is None
                else Deadline.after(budget_s, clock))
    return PendingRequest(
        tables=[make_table(f"t{id(deadline)}") for _ in range(tables)],
        deadline=deadline,
        future=asyncio.get_running_loop().create_future(),
        enqueued_at=clock(),
    )


def _error_of(future):
    assert future.done()
    return future.exception()


class TestAdmissionQueueOffer:
    def test_admits_until_full(self):
        async def main():
            clock = FakeClock()
            queue = AdmissionQueue(maxsize=3, clock=clock)
            for _ in range(3):
                queue.offer(_pending(clock, budget_s=1.0))
            assert queue.depth == 3
            assert queue.admitted == 3
            assert queue.shed_queue_full == 0
        asyncio.run(main())

    def test_overflow_sheds_the_earliest_queued_deadline(self):
        async def main():
            clock = FakeClock()
            queue = AdmissionQueue(maxsize=2, clock=clock)
            near = _pending(clock, budget_s=0.5)
            far = _pending(clock, budget_s=5.0)
            queue.offer(near)
            queue.offer(far)
            newcomer = _pending(clock, budget_s=2.0)
            queue.offer(newcomer)  # near is the cheapest to drop
            assert isinstance(_error_of(near.future), GatewayOverloaded)
            assert not far.future.done() and not newcomer.future.done()
            assert queue.depth == 2
            assert queue.shed_queue_full == 1
        asyncio.run(main())

    def test_overflow_rejects_the_incoming_when_it_expires_soonest(self):
        async def main():
            clock = FakeClock()
            queue = AdmissionQueue(maxsize=1, clock=clock)
            queued = _pending(clock, budget_s=5.0)
            queue.offer(queued)
            with pytest.raises(GatewayOverloaded, match="nearest to expiry"):
                queue.offer(_pending(clock, budget_s=0.1))
            assert not queued.future.done()
            assert queue.depth == 1
            assert queue.shed_queue_full == 1
        asyncio.run(main())

    def test_unbounded_requests_are_shed_last(self):
        async def main():
            clock = FakeClock()
            queue = AdmissionQueue(maxsize=1, clock=clock)
            bounded = _pending(clock, budget_s=30.0)
            queue.offer(bounded)
            # An unbounded newcomer outranks any finite deadline: the
            # bounded entry is the victim.
            queue.offer(_pending(clock, budget_s=None))
            assert isinstance(_error_of(bounded.future), GatewayOverloaded)
            # ...and an unbounded queue sheds a bounded newcomer at the door.
            with pytest.raises(GatewayOverloaded):
                queue.offer(_pending(clock, budget_s=30.0))
        asyncio.run(main())

    def test_deadline_tie_breaks_by_arrival_order(self):
        async def main():
            clock = FakeClock()
            queue = AdmissionQueue(maxsize=1, clock=clock)
            first = _pending(clock, budget_s=None)
            queue.offer(first)
            second = _pending(clock, budget_s=None)
            queue.offer(second)  # same sort key: the older entry is shed
            assert isinstance(_error_of(first.future), GatewayOverloaded)
            assert not second.future.done()
        asyncio.run(main())

    def test_closed_queue_refuses_intake(self):
        async def main():
            clock = FakeClock()
            queue = AdmissionQueue(maxsize=4, clock=clock)
            queue.close()
            with pytest.raises(GatewayOverloaded, match="draining"):
                queue.offer(_pending(clock, budget_s=1.0))
        asyncio.run(main())

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            AdmissionQueue(maxsize=0)


class TestAdmissionQueueTake:
    def test_take_respects_max_items(self):
        async def main():
            clock = FakeClock()
            queue = AdmissionQueue(maxsize=8, clock=clock)
            offered = [_pending(clock, budget_s=1.0) for _ in range(3)]
            for pending in offered:
                queue.offer(pending)
            batch = await queue.take(max_items=2, max_wait_s=0.0)
            assert batch == offered[:2]
            assert queue.depth == 1
        asyncio.run(main())

    def test_expired_entries_are_shed_at_dequeue(self):
        async def main():
            clock = FakeClock()
            queue = AdmissionQueue(maxsize=8, clock=clock)
            doomed = _pending(clock, budget_s=0.2)
            alive = _pending(clock, budget_s=60.0)
            queue.offer(doomed)
            queue.offer(alive)
            clock.advance(1.0)  # doomed expires while queued
            batch = await queue.take(max_items=8, max_wait_s=0.0)
            assert batch == [alive]
            error = _error_of(doomed.future)
            assert isinstance(error, DeadlineExceeded)
            assert "queued" in str(error)
            assert queue.shed_expired == 1
        asyncio.run(main())

    def test_take_blocks_until_an_offer_arrives(self):
        async def main():
            clock = FakeClock()
            queue = AdmissionQueue(maxsize=8, clock=clock)
            take = asyncio.create_task(queue.take(max_items=4, max_wait_s=0.0))
            await asyncio.sleep(0.01)
            assert not take.done()
            pending = _pending(clock, budget_s=1.0)
            queue.offer(pending)
            assert await asyncio.wait_for(take, 2.0) == [pending]
        asyncio.run(main())

    def test_take_coalesces_arrivals_within_the_window(self):
        async def main():
            queue = AdmissionQueue(maxsize=8)  # real clock: a real window

            async def trickle():
                for index in range(3):
                    pending = PendingRequest(
                        tables=[make_table(f"t{index}")],
                        deadline=Deadline.never(),
                        future=asyncio.get_running_loop().create_future(),
                        enqueued_at=0.0,
                    )
                    queue.offer(pending)
                    await asyncio.sleep(0.005)

            feeder = asyncio.create_task(trickle())
            batch = await asyncio.wait_for(
                queue.take(max_items=8, max_wait_s=0.2), 5.0
            )
            await feeder
            assert len(batch) == 3  # one coalesced batch, not three singles
        asyncio.run(main())

    def test_take_returns_early_once_max_items_arrive(self):
        async def main():
            queue = AdmissionQueue(maxsize=8)
            take = asyncio.create_task(queue.take(max_items=2, max_wait_s=30.0))
            await asyncio.sleep(0)
            for index in range(2):
                queue.offer(PendingRequest(
                    tables=[make_table(f"t{index}")],
                    deadline=Deadline.never(),
                    future=asyncio.get_running_loop().create_future(),
                    enqueued_at=0.0,
                ))
                await asyncio.sleep(0)
            # Full batch assembled: no need to sit out the 30 s window.
            assert len(await asyncio.wait_for(take, 2.0)) == 2
        asyncio.run(main())

    def test_closed_and_empty_means_stop(self):
        async def main():
            clock = FakeClock()
            queue = AdmissionQueue(maxsize=8, clock=clock)
            queue.close()
            assert await queue.take(max_items=4, max_wait_s=0.0) == []
        asyncio.run(main())

    def test_close_wakes_a_blocked_consumer(self):
        async def main():
            queue = AdmissionQueue(maxsize=8)
            take = asyncio.create_task(queue.take(max_items=4, max_wait_s=0.0))
            await asyncio.sleep(0.01)
            queue.close()
            assert await asyncio.wait_for(take, 2.0) == []
        asyncio.run(main())

    def test_close_leaves_admitted_work_to_drain(self):
        async def main():
            clock = FakeClock()
            queue = AdmissionQueue(maxsize=8, clock=clock)
            pending = _pending(clock, budget_s=5.0)
            queue.offer(pending)
            queue.close()
            assert await queue.take(max_items=4, max_wait_s=0.0) == [pending]
            assert await queue.take(max_items=4, max_wait_s=0.0) == []
        asyncio.run(main())
