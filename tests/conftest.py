"""Shared fixtures for the test suite.

Heavy objects (the synthetic world, corpora, a trained tokenizer) are built
once per session at a deliberately tiny scale so that the full suite stays
fast while still exercising real code paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.semtab import SemTabConfig, SemTabGenerator
from repro.data.viznet import VizNetConfig, VizNetGenerator
from repro.data.corpus import stratified_split
from repro.data.table import Column, Table
from repro.kg.builder import KGWorldConfig, SyntheticKGBuilder
from repro.kg.linker import EntityLinker, LinkerConfig
from repro.text.tokenizer import WordPieceTokenizer


@pytest.fixture(scope="session")
def world():
    """A small synthetic knowledge-graph world shared by the whole session."""
    return SyntheticKGBuilder(KGWorldConfig(seed=3).scaled(0.25)).build()


@pytest.fixture(scope="session")
def graph(world):
    return world.graph


@pytest.fixture(scope="session")
def linker(graph):
    """A shared entity linker (building the BM25 index once)."""
    return EntityLinker(graph, LinkerConfig(max_candidates=8))


@pytest.fixture(scope="session")
def semtab_corpus(world):
    """A tiny SemTab-style corpus."""
    return SemTabGenerator(world, SemTabConfig(num_tables=30, seed=11)).generate()


@pytest.fixture(scope="session")
def viznet_corpus(world):
    """A tiny VizNet-style corpus."""
    return VizNetGenerator(world, VizNetConfig(num_tables=40, seed=12)).generate()


@pytest.fixture(scope="session")
def semtab_splits(semtab_corpus):
    return stratified_split(semtab_corpus, seed=5)


@pytest.fixture(scope="session")
def tokenizer(world, semtab_corpus):
    """A WordPiece tokenizer trained on KG texts plus corpus cells."""
    texts = [entity.document_text() for entity in world.graph.entities()]
    for table in semtab_corpus.tables[:10]:
        for column in table.columns:
            texts.append(" ".join(column.cells[:5]))
    return WordPieceTokenizer.train(texts, vocab_size=1500)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture()
def toy_table():
    """A small hand-written table with a person column and a numeric column."""
    return Table(
        table_id="toy-0",
        columns=[
            Column(name="player", cells=["James Smith", "Mary Johnson", "John Brown"],
                   label="Cricketer"),
            Column(name="born", cells=["1888-11-24", "1874-02-27", "1863-02-10"],
                   label="birthDate"),
            Column(name="points", cells=["12", "873", "42"], label="points"),
        ],
    )
