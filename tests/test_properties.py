"""Property-based tests (hypothesis) of core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.metrics import accuracy_score, weighted_f1_score
from repro.kg.bm25 import BM25Index
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.text.ner import EntitySchema, detect_schema
from repro.text.tokenizer import WordPieceTokenizer, basic_tokenize
from repro.text.vocab import Vocabulary


# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
labels = st.sampled_from(["alpha", "beta", "gamma", "delta"])
label_lists = st.lists(labels, min_size=1, max_size=40)
small_floats = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)
words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789 ", min_size=0, max_size=60)


# --------------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------------- #
class TestMetricProperties:
    @given(label_lists)
    def test_accuracy_perfect_prediction_is_one(self, truths):
        assert accuracy_score(truths, list(truths)) == 1.0

    @given(label_lists)
    def test_weighted_f1_perfect_prediction_is_one(self, truths):
        assert weighted_f1_score(truths, list(truths)) == pytest.approx(1.0)

    @given(st.lists(st.tuples(labels, labels), min_size=1, max_size=40))
    def test_metrics_bounded(self, pairs):
        truths = [t for t, _ in pairs]
        predictions = [p for _, p in pairs]
        assert 0.0 <= accuracy_score(truths, predictions) <= 1.0
        assert 0.0 <= weighted_f1_score(truths, predictions) <= 1.0

    @given(st.lists(st.tuples(labels, labels), min_size=1, max_size=40))
    def test_accuracy_invariant_under_permutation(self, pairs):
        truths = [t for t, _ in pairs]
        predictions = [p for _, p in pairs]
        order = np.random.default_rng(0).permutation(len(pairs))
        shuffled_truths = [truths[i] for i in order]
        shuffled_predictions = [predictions[i] for i in order]
        assert accuracy_score(truths, predictions) == accuracy_score(
            shuffled_truths, shuffled_predictions
        )


# --------------------------------------------------------------------------- #
# softmax / cross entropy
# --------------------------------------------------------------------------- #
class TestTensorProperties:
    @given(st.lists(st.lists(small_floats, min_size=2, max_size=6), min_size=1, max_size=5)
           .filter(lambda rows: len({len(r) for r in rows}) == 1))
    def test_softmax_rows_are_distributions(self, rows):
        logits = np.asarray(rows, dtype=np.float64)
        probabilities = F.softmax(Tensor(logits)).data
        assert np.all(probabilities >= 0)
        np.testing.assert_allclose(probabilities.sum(axis=-1), np.ones(len(rows)), atol=1e-6)

    @given(st.lists(small_floats, min_size=2, max_size=8), st.integers(min_value=0, max_value=7))
    def test_cross_entropy_non_negative(self, row, target_index):
        target_index = target_index % len(row)
        logits = Tensor(np.asarray([row], dtype=np.float64))
        loss = F.cross_entropy(logits, np.array([target_index]))
        assert float(loss.data) >= -1e-6

    @given(st.lists(small_floats, min_size=1, max_size=20))
    def test_sum_matches_numpy(self, values):
        # atol covers float32 rounding of the compute dtype: storage plus
        # pairwise-summation error with partial sums up to 20 * 50 = 1000,
        # including cancellation that makes rtol alone meaningless.
        array = np.asarray(values, dtype=np.float64)
        np.testing.assert_allclose(
            float(Tensor(array).sum().data), array.sum(), rtol=1e-6, atol=1e-3
        )

    @given(st.lists(small_floats, min_size=1, max_size=20))
    def test_addition_commutative(self, values):
        array = np.asarray(values, dtype=np.float64)
        left = (Tensor(array) + Tensor(array[::-1].copy())).data
        right = (Tensor(array[::-1].copy()) + Tensor(array)).data
        np.testing.assert_allclose(left, right)


# --------------------------------------------------------------------------- #
# tokenizer and vocabulary
# --------------------------------------------------------------------------- #
_SHARED_TOKENIZER = WordPieceTokenizer.train(
    ["the quick brown fox jumps over the lazy dog",
     "peter steele plays gothic metal in riverton",
     "stonefield university cricket club 1898"] * 3,
    vocab_size=300,
)


class TestTextProperties:
    @given(words)
    def test_tokenizer_never_crashes_and_ids_in_range(self, text):
        ids = _SHARED_TOKENIZER.encode(text)
        assert all(0 <= token_id < _SHARED_TOKENIZER.vocab_size for token_id in ids)

    @given(words)
    def test_encode_respects_max_length(self, text):
        assert len(_SHARED_TOKENIZER.encode(text, max_length=5)) <= 5

    @given(words)
    def test_basic_tokenize_lowercases(self, text):
        assert all(token == token.lower() for token in basic_tokenize(text))

    @given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=8), min_size=0, max_size=30))
    def test_vocabulary_roundtrip(self, tokens):
        vocabulary = Vocabulary(tokens)
        for token in tokens:
            assert vocabulary.id_to_token(vocabulary.token_to_id(token)) == token

    @given(words)
    def test_detect_schema_total_function(self, text):
        assert detect_schema(text) in set(EntitySchema)

    @given(st.integers(min_value=-10**9, max_value=10**9))
    def test_integers_detected_as_number_or_date(self, value):
        schema = detect_schema(str(value))
        assert schema in (EntitySchema.NUMBER, EntitySchema.DATE)


# --------------------------------------------------------------------------- #
# BM25
# --------------------------------------------------------------------------- #
_DOCUMENTS = [
    ("d1", "peter steele gothic metal musician riverton"),
    ("d2", "riverton tigers basketball club"),
    ("d3", "stonefield university norway"),
    ("d4", "crimson horizon drama film"),
    ("d5", "wilfred blackburn cricketer stonefield"),
]
# Oracle-parity tests pin float64: the scalar score() oracle accumulates in
# float64, so the compiled postings must match its precision exactly.
_INDEX = BM25Index.build(_DOCUMENTS, dtype=np.float64)


class TestBM25Properties:
    @given(words)
    @settings(max_examples=60)
    def test_search_scores_sorted_and_positive(self, query):
        hits = _INDEX.search(query, top_k=5)
        scores = [hit.score for hit in hits]
        assert all(score > 0 for score in scores)
        assert scores == sorted(scores, reverse=True)

    @given(words, st.integers(min_value=1, max_value=5))
    @settings(max_examples=60)
    def test_top_k_never_exceeded(self, query, top_k):
        assert len(_INDEX.search(query, top_k=top_k)) <= top_k

    @given(words)
    @settings(max_examples=60)
    def test_score_matches_search_result(self, query):
        for hit in _INDEX.search(query, top_k=3):
            assert _INDEX.score(query, hit.doc_id) == hit.score

    @given(st.sampled_from([doc_id for doc_id, _ in _DOCUMENTS]))
    def test_document_retrieves_itself_at_rank_one(self, doc_id):
        text = dict(_DOCUMENTS)[doc_id]
        hits = _INDEX.search(text, top_k=1)
        assert hits and hits[0].doc_id == doc_id
