"""Tests of the rule-based named-entity schema detector."""

from __future__ import annotations

import pytest

from repro.text.ner import (
    EntitySchema,
    detect_schema,
    is_date_mention,
    is_numeric_mention,
    is_person_mention,
)


class TestNumericDetection:
    @pytest.mark.parametrize("mention", ["42", "-17", "3.14", ".5", "1,234,567.89", "85 %", "73%"])
    def test_numbers_detected(self, mention):
        assert is_numeric_mention(mention)

    @pytest.mark.parametrize("mention", ["42a", "abc", "", "  ", "12-13", "PF"])
    def test_non_numbers_rejected(self, mention):
        assert not is_numeric_mention(mention)


class TestDateDetection:
    @pytest.mark.parametrize("mention", [
        "1888-11-24", "1934/5/2", "24.11.1888", "1987",
        "12 March 1990", "Mar 4, 1988", "january 1 2001",
    ])
    def test_dates_detected(self, mention):
        assert is_date_mention(mention)

    @pytest.mark.parametrize("mention", ["tomorrow", "Peter Steele", "", "12345678"])
    def test_non_dates_rejected(self, mention):
        assert not is_date_mention(mention)


class TestPersonDetection:
    @pytest.mark.parametrize("mention", ["Peter Steele", "W. Blackburn", "Mary Johnson"])
    def test_person_names_detected(self, mention):
        assert is_person_mention(mention)

    @pytest.mark.parametrize("mention", ["riverton tigers", "Rust", "UNIVERSITY OF STONEFIELD", ""])
    def test_non_persons_rejected(self, mention):
        assert not is_person_mention(mention)


class TestDetectSchema:
    def test_number(self):
        assert detect_schema("12,345") == EntitySchema.NUMBER

    def test_date_iso(self):
        assert detect_schema("1888-11-24") == EntitySchema.DATE

    def test_bare_year_is_number_or_date(self):
        # A bare year is unlinkable either way; both categories are acceptable
        # for the linker, but the function must be deterministic.
        assert detect_schema("1987") in (EntitySchema.NUMBER, EntitySchema.DATE)
        assert detect_schema("1987") == detect_schema("1987")

    def test_person(self):
        assert detect_schema("Peter Steele") == EntitySchema.PERSON

    def test_other_for_team_name(self):
        assert detect_schema("Riverton Tigers") == EntitySchema.OTHER

    def test_empty_and_none_are_other(self):
        assert detect_schema("") == EntitySchema.OTHER
        assert detect_schema(None) == EntitySchema.OTHER

    def test_numeric_with_surrounding_spaces(self):
        assert detect_schema("  42  ") == EntitySchema.NUMBER
