"""Tests of the vocabulary and special-token handling."""

from __future__ import annotations

import pytest

from repro.text.vocab import SpecialTokens, Vocabulary


class TestSpecialTokens:
    def test_default_tuple_order(self):
        tokens = SpecialTokens()
        assert tokens.as_tuple() == ("[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SpecialTokens().pad = "[X]"


class TestVocabulary:
    def test_specials_get_lowest_ids(self):
        vocab = Vocabulary(["apple", "banana"])
        assert vocab.pad_id == 0
        assert vocab.unk_id == 1
        assert vocab.cls_id == 2
        assert vocab.sep_id == 3
        assert vocab.mask_id == 4

    def test_add_token_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add_token("word")
        second = vocab.add_token("word")
        assert first == second
        assert len(vocab) == 6

    def test_contains_and_iteration(self):
        vocab = Vocabulary(["x", "y"])
        assert "x" in vocab and "z" not in vocab
        assert set(vocab) >= {"x", "y", "[PAD]"}

    def test_unknown_token_maps_to_unk(self):
        vocab = Vocabulary(["known"])
        assert vocab.token_to_id("unknown") == vocab.unk_id

    def test_encode_decode_roundtrip(self):
        vocab = Vocabulary(["hello", "world"])
        ids = vocab.encode(["hello", "world"])
        assert vocab.decode(ids) == ["hello", "world"]

    def test_duplicate_initial_tokens_collapse(self):
        vocab = Vocabulary(["a", "a", "b"])
        assert len(vocab) == 5 + 2

    def test_id_to_token_out_of_range(self):
        with pytest.raises(IndexError):
            Vocabulary().id_to_token(100)


class TestBuildFromCorpus:
    def test_frequency_ordering(self):
        vocab = Vocabulary.build_from_corpus([["b", "a", "a"], ["a", "b", "c"]])
        # 'a' occurs most often, so it gets the first non-special id.
        assert vocab.token_to_id("a") < vocab.token_to_id("b") < vocab.token_to_id("c")

    def test_min_frequency_filters(self):
        vocab = Vocabulary.build_from_corpus([["rare", "common", "common"]], min_frequency=2)
        assert "common" in vocab and "rare" not in vocab

    def test_max_size_respected(self):
        streams = [[f"token{i}" for i in range(100)]]
        vocab = Vocabulary.build_from_corpus(streams, max_size=20)
        assert len(vocab) <= 20
