"""Tests of the WordPiece-style tokenizer."""

from __future__ import annotations

import pytest

from repro.text.tokenizer import WordPieceTokenizer, basic_tokenize


class TestBasicTokenize:
    def test_lowercases(self):
        assert basic_tokenize("Hello World") == ["hello", "world"]

    def test_splits_punctuation(self):
        assert basic_tokenize("a,b") == ["a", ",", "b"]

    def test_keeps_numbers(self):
        assert basic_tokenize("born 1888-11-24") == ["born", "1888", "-", "11", "-", "24"]

    def test_empty_string(self):
        assert basic_tokenize("") == []

    def test_alphanumeric_kept_together(self):
        assert basic_tokenize("tp53 protein") == ["tp53", "protein"]


@pytest.fixture(scope="module")
def small_tokenizer():
    texts = [
        "the silver tigers basketball team",
        "peter steele gothic metal musician",
        "cricketer wilfred blackburn played for riverton",
        "the crimson horizon drama film directed by maria lopez",
        "university of stonefield located in stonefield",
    ] * 3
    return WordPieceTokenizer.train(texts, vocab_size=400, min_frequency=1)


class TestTraining:
    def test_vocab_contains_frequent_words(self, small_tokenizer):
        assert "musician" in small_tokenizer.vocabulary
        assert "the" in small_tokenizer.vocabulary

    def test_vocab_size_respected(self):
        tokenizer = WordPieceTokenizer.train(["alpha beta gamma delta"] * 5, vocab_size=30)
        assert tokenizer.vocab_size <= 30

    def test_character_pieces_present(self, small_tokenizer):
        # Single characters guarantee unseen words can still be segmented.
        assert "s" in small_tokenizer.vocabulary


class TestTokenize:
    def test_known_word_single_piece(self, small_tokenizer):
        assert small_tokenizer.tokenize("musician") == ["musician"]

    def test_unseen_word_segmented_not_unk(self, small_tokenizer):
        pieces = small_tokenizer.tokenize("silverton")
        assert pieces
        assert "[UNK]" not in pieces

    def test_continuation_pieces_marked(self, small_tokenizer):
        pieces = small_tokenizer.tokenize("tigersville")
        assert len(pieces) >= 2
        assert all(piece.startswith("##") for piece in pieces[1:])

    def test_very_long_word_becomes_unk(self, small_tokenizer):
        pieces = small_tokenizer.tokenize("x" * 100)
        assert pieces == [small_tokenizer.vocabulary.specials.unk]

    def test_empty_text(self, small_tokenizer):
        assert small_tokenizer.tokenize("") == []


class TestEncodeDecode:
    def test_encode_truncates(self, small_tokenizer):
        ids = small_tokenizer.encode("the silver tigers basketball team", max_length=3)
        assert len(ids) == 3

    def test_decode_merges_continuations(self, small_tokenizer):
        ids = small_tokenizer.encode("gothic metal")
        decoded = small_tokenizer.decode(ids)
        assert "gothic" in decoded and "metal" in decoded

    def test_decode_skips_special_tokens(self, small_tokenizer):
        vocab = small_tokenizer.vocabulary
        ids = [vocab.cls_id] + small_tokenizer.encode("musician") + [vocab.sep_id, vocab.pad_id]
        assert small_tokenizer.decode(ids) == "musician"

    def test_roundtrip_known_sentence(self, small_tokenizer):
        text = "peter steele gothic metal musician"
        decoded = small_tokenizer.decode(small_tokenizer.encode(text))
        assert decoded == text
