"""CLI contract: exit codes, JSON shape, rule selection, module scoping.

The tree-under-test is a miniature ``src/repro`` built in ``tmp_path`` so
exit codes are exercised on real files, exactly as CI invokes the tool.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.__main__ import main


@pytest.fixture()
def clean_tree(tmp_path: Path) -> Path:
    module = tmp_path / "src" / "repro" / "gateway" / "app.py"
    module.parent.mkdir(parents=True)
    module.write_text(
        "import time\n\n"
        "def deadline(budget_s):\n"
        "    return time.monotonic() + budget_s\n",
        encoding="utf-8",
    )
    return tmp_path


@pytest.fixture()
def violating_tree(tmp_path: Path) -> Path:
    # The acceptance scenario: a stray wall-clock read in the gateway.
    module = tmp_path / "src" / "repro" / "gateway" / "app.py"
    module.parent.mkdir(parents=True)
    module.write_text(
        "import time\n\n"
        "def deadline(budget_s):\n"
        "    return time.time() + budget_s\n",
        encoding="utf-8",
    )
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_tree, capsys):
        assert main([str(clean_tree / "src")]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_seeded_violation_exits_nonzero(self, violating_tree, capsys):
        assert main([str(violating_tree / "src")]) == 1
        out = capsys.readouterr().out
        assert "REP103" in out and "time.time" in out

    def test_unknown_select_exits_two(self, clean_tree, capsys):
        assert main(["--select", "REP999", str(clean_tree / "src")]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_no_files_exits_two(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main([str(empty)]) == 2
        assert "no Python files" in capsys.readouterr().err

    def test_waived_violation_exits_zero(self, tmp_path, capsys):
        module = tmp_path / "src" / "repro" / "gateway" / "app.py"
        module.parent.mkdir(parents=True)
        module.write_text(
            "import time\n\n"
            "def stamp():\n"
            "    # repro: allow[REP103] -- log timestamp, no deadline math\n"
            "    return time.time()\n",
            encoding="utf-8",
        )
        assert main([str(tmp_path / "src")]) == 0
        assert "1 waived" in capsys.readouterr().out


class TestSelection:
    def test_select_limits_rules(self, violating_tree, capsys):
        # REP105 alone does not fire on the wall-clock tree.
        assert main(["--select", "REP105", str(violating_tree / "src")]) == 0
        capsys.readouterr()
        # Names work interchangeably with codes.
        assert main(["--select", "monotonic-deadlines",
                     str(violating_tree / "src")]) == 1

    def test_module_scoping_spares_out_of_scope_files(self, tmp_path, capsys):
        # The same wall-clock call outside runtime/gateway modules is legal.
        module = tmp_path / "src" / "repro" / "data" / "io.py"
        module.parent.mkdir(parents=True)
        module.write_text("import time\nstamp = time.time()\n",
                          encoding="utf-8")
        assert main([str(tmp_path / "src")]) == 0

    def test_list_rules_prints_all_codes(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP101", "REP102", "REP103", "REP104", "REP105"):
            assert code in out


class TestJsonOutput:
    def test_shape_and_exit_code(self, violating_tree, capsys):
        assert main(["--format", "json", str(violating_tree / "src")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["files"] == 1
        assert payload["summary"]["unwaived"] == 1
        assert payload["summary"]["waived"] == 0
        (finding,) = payload["findings"]
        assert finding["code"] == "REP103"
        assert finding["line"] == 4
        assert finding["waived"] is False

    def test_clean_tree_empty_findings(self, clean_tree, capsys):
        assert main(["--format", "json", str(clean_tree / "src")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["summary"]["total"] == 0


class TestModuleEntryPoint:
    def test_python_dash_m_invocation(self, violating_tree):
        # The CI gate runs the tool exactly like this.
        env = dict(os.environ)
        repo_src = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = str(repo_src)
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(violating_tree / "src")],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert result.returncode == 1
        assert "REP103" in result.stdout
