"""Waiver parsing: reasons are mandatory, tokens must name real rules."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.core import ANALYZER_CODE, extract_comments
from repro.analysis.runner import analyze_file
from repro.analysis.waivers import parse_waivers
from tests.analysis.util import parse_snippet


def waivers_for(source: str):
    context = parse_snippet(source)
    return parse_waivers(str(context.path), context.comments)


class TestParsing:
    def test_trailing_waiver_with_reason(self):
        waivers = waivers_for(
            "x = 1  # repro: allow[REP104] -- error is terminal here\n"
        )
        assert not waivers.problems
        waiver = waivers.lookup("REP104", 1)
        assert waiver is not None
        assert waiver.reason == "error is terminal here"

    def test_kebab_name_is_accepted(self):
        waivers = waivers_for(
            "x = 1  # repro: allow[typed-errors] -- terminal\n"
        )
        assert not waivers.problems
        assert waivers.lookup("REP104", 1) is not None

    def test_multiple_codes_comma_separated(self):
        waivers = waivers_for(
            "x = 1  # repro: allow[REP104, seeded-rng] -- demo fixture\n"
        )
        assert not waivers.problems
        assert waivers.lookup("REP104", 1) is not None
        assert waivers.lookup("REP105", 1) is not None
        assert waivers.lookup("REP101", 1) is None

    def test_missing_reason_is_a_problem(self):
        waivers = waivers_for("x = 1  # repro: allow[REP104]\n")
        assert len(waivers.problems) == 1
        problem = waivers.problems[0]
        assert problem.code == ANALYZER_CODE
        assert "reason" in problem.message
        # And the broken waiver waives nothing.
        assert waivers.lookup("REP104", 1) is None

    def test_unknown_code_is_a_problem(self):
        waivers = waivers_for("x = 1  # repro: allow[REP999] -- whatever\n")
        assert len(waivers.problems) == 1
        assert "unknown rule" in waivers.problems[0].message
        assert "REP999" in waivers.problems[0].message

    def test_empty_allow_is_a_problem(self):
        waivers = waivers_for("x = 1  # repro: allow[] -- nothing\n")
        assert len(waivers.problems) == 1
        assert "no rules" in waivers.problems[0].message

    def test_analyzer_code_is_never_waivable(self):
        # REP000 names the analyzer's own problems; a waiver must not be
        # able to silence a malformed waiver.
        waivers = waivers_for("x = 1  # repro: allow[REP000] -- try me\n")
        assert len(waivers.problems) == 1
        assert waivers.lookup(ANALYZER_CODE, 1) is None

    def test_waiver_text_in_docstring_is_ignored(self):
        source = '"""docs quoting # repro: allow[REP104] syntax"""\nx = 1\n'
        waivers = waivers_for(source)
        assert not waivers.problems
        assert waivers.lookup("REP104", 1) is None


class TestPlacement:
    def test_own_line_waiver_covers_next_statement(self):
        waivers = waivers_for(
            "# repro: allow[REP104] -- terminal\n"
            "x = 1\n"
        )
        assert waivers.lookup("REP104", 2) is not None

    def test_waiver_reaches_through_a_comment_block(self):
        # The waiver may open a multi-line comment block whose tail carries
        # the rest of the reason; the statement below is still covered.
        waivers = waivers_for(
            "# repro: allow[REP104] -- the error is consumed by the\n"
            "# fallback, which re-raises on double failure\n"
            "x = 1\n"
        )
        assert waivers.lookup("REP104", 3) is not None

    def test_waiver_does_not_leak_past_code(self):
        waivers = waivers_for(
            "# repro: allow[REP104] -- covers only line 2\n"
            "x = 1\n"
            "y = 2\n"
        )
        assert waivers.lookup("REP104", 2) is not None
        assert waivers.lookup("REP104", 3) is None


class TestIntegration:
    def test_waived_finding_is_marked_not_dropped(self, tmp_path):
        target = tmp_path / "src" / "repro" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "def run(fn):\n"
            "    try:\n"
            "        return fn()\n"
            "    # repro: allow[REP104] -- result is optional by contract\n"
            "    except Exception:\n"
            "        return None\n",
            encoding="utf-8",
        )
        findings = analyze_file(target)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.code == "REP104" and finding.waived
        assert finding.waiver_reason == "result is optional by contract"

    def test_malformed_waiver_surfaces_as_unwaived_finding(self, tmp_path):
        target = tmp_path / "src" / "repro" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("x = 1  # repro: allow[REP104]\n", encoding="utf-8")
        findings = analyze_file(target)
        assert [f.code for f in findings] == [ANALYZER_CODE]
        assert not findings[0].waived


class TestExtractComments:
    def test_only_real_comment_tokens(self):
        source = (
            '"""# not a comment"""\n'
            "x = 1  # trailing\n"
            "text = '# in a string'\n"
            "# own line\n"
        )
        comments = extract_comments(source)
        assert set(comments) == {2, 4}
        assert comments[2] == "# trailing"

    def test_syntax_error_in_file_reports_rep000(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n", encoding="utf-8")
        findings = analyze_file(Path(target))
        assert [f.code for f in findings] == [ANALYZER_CODE]
        assert "syntax error" in findings[0].message
