"""Framework plumbing: module derivation, dotted names, the registry."""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis.core import (
    Rule,
    all_rules,
    derive_module,
    dotted_name,
    register_rule,
    rule_codes,
)


class TestDeriveModule:
    @pytest.mark.parametrize("path, module", [
        ("src/repro/gateway/app.py", "repro.gateway.app"),
        ("/anywhere/on/disk/src/repro/core/cache.py", "repro.core.cache"),
        ("src/repro/analysis/__init__.py", "repro.analysis"),
        ("tests/gateway/test_batcher.py", "tests.gateway.test_batcher"),
        ("benchmarks/bench_serve.py", "benchmarks.bench_serve"),
        ("scripts/check_static_analysis.py", "scripts.check_static_analysis"),
        ("standalone.py", "standalone"),
    ])
    def test_anchoring(self, path, module):
        assert derive_module(Path(path)) == module

    def test_tmp_src_tree_maps_into_repro(self, tmp_path):
        # The scoping that makes fixture trees work: any src anchor counts.
        target = tmp_path / "src" / "repro" / "runtime" / "executor.py"
        assert derive_module(target) == "repro.runtime.executor"


class TestDottedName:
    @pytest.mark.parametrize("expr, expected", [
        ("time.sleep", "time.sleep"),
        ("np.random.default_rng", "np.random.default_rng"),
        ("self._rng.random", "self._rng.random"),
        ("plain", "plain"),
    ])
    def test_resolution(self, expr, expected):
        node = ast.parse(expr, mode="eval").body
        assert dotted_name(node) == expected

    def test_non_name_root_is_none(self):
        node = ast.parse("get_rng().random", mode="eval").body
        assert dotted_name(node) is None


class TestRegistry:
    def test_six_rules_registered_in_code_order(self):
        codes = [rule.code for rule in all_rules()]
        assert codes == ["REP101", "REP102", "REP103", "REP104", "REP105",
                         "REP106"]

    def test_rule_codes_accept_names_and_codes(self):
        tokens = rule_codes()
        assert tokens["REP104"] == "REP104"
        assert tokens["typed-errors"] == "REP104"
        assert tokens["lock-discipline"] == "REP101"

    def test_duplicate_code_is_rejected(self):
        class Impostor(Rule):
            code = "REP101"
            name = "impostor"
            description = "duplicate"

        with pytest.raises(ValueError, match="already registered"):
            register_rule(Impostor)

    def test_missing_code_is_rejected(self):
        class Nameless(Rule):
            name = "nameless"
            description = "no code"

        with pytest.raises(ValueError, match="non-empty code"):
            register_rule(Nameless)
