"""Shared helpers for the repro.analysis test suite.

Rules are exercised against inline snippets parsed under a *pretend* path,
so each fixture controls the derived module (and therefore which rules
apply) without writing files to disk.  CLI tests that need real files build
a miniature ``src/repro/...`` tree under ``tmp_path`` instead.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.core import Finding, ModuleContext, Rule


def parse_snippet(source: str, path: str = "src/repro/mod.py") -> ModuleContext:
    """A :class:`ModuleContext` for an inline snippet under a pretend path."""
    return ModuleContext.parse(Path(path), textwrap.dedent(source))


def run_rule(rule: Rule, source: str,
             path: str = "src/repro/mod.py") -> list[Finding]:
    """Findings of one rule over a snippet; asserts the rule is in scope."""
    context = parse_snippet(source, path)
    assert rule.applies_to(context), (
        f"{rule.code} does not apply to {context.module}; fixture path is wrong"
    )
    return list(rule.check(context))
