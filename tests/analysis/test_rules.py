"""Fixture-driven tests: one violating and one clean snippet per rule.

Every rule is fed a minimal snippet that trips it and a near-identical
snippet that follows the convention — so a rule regression (stops firing,
or starts over-firing) pins to the exact invariant that broke.
"""

from __future__ import annotations

from repro.analysis.rules import (
    LockDisciplineRule,
    MonotonicDeadlinesRule,
    NoBlockingInAsyncRule,
    SeededRngRule,
    SocketTimeoutRule,
    TypedErrorsRule,
)
from repro.analysis.waivers import parse_waivers
from tests.analysis.util import parse_snippet, run_rule


class TestLockDiscipline:
    VIOLATING = """\
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0  # guarded-by: _lock

            def bump(self):
                self.hits += 1  # not under the lock
        """

    CLEAN = """\
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0  # guarded-by: _lock

            def bump(self):
                with self._lock:
                    self.hits += 1
        """

    def test_unlocked_access_is_flagged(self):
        findings = run_rule(LockDisciplineRule(), self.VIOLATING)
        assert len(findings) == 1
        assert findings[0].code == "REP101"
        assert "'self.hits'" in findings[0].message
        assert "_lock" in findings[0].message

    def test_locked_access_is_clean(self):
        assert run_rule(LockDisciplineRule(), self.CLEAN) == []

    def test_init_is_exempt(self):
        # Construction happens-before publication: __init__ writes freely.
        source = """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = 0  # guarded-by: _lock
                    self.hits = 10
            """
        assert run_rule(LockDisciplineRule(), source) == []

    def test_locked_suffix_methods_are_exempt(self):
        source = """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = 0  # guarded-by: _lock

                def _bump_locked(self):
                    self.hits += 1  # caller holds the lock, per convention
            """
        assert run_rule(LockDisciplineRule(), source) == []

    def test_wrong_lock_does_not_satisfy(self):
        source = """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._other = threading.Lock()
                    self.hits = 0  # guarded-by: _lock

                def bump(self):
                    with self._other:
                        self.hits += 1
            """
        findings = run_rule(LockDisciplineRule(), source)
        assert len(findings) == 1 and findings[0].code == "REP101"

    def test_guarded_by_inside_docstring_is_ignored(self):
        # The annotation is a real comment token, not text in a string.
        source = '''\
            class Counter:
                def __init__(self):
                    self.hits = 0
                    self.note = """# guarded-by: _lock"""

                def bump(self):
                    self.hits += 1
            '''
        assert run_rule(LockDisciplineRule(), source) == []


class TestNoBlockingInAsync:
    PATH = "src/repro/gateway/app.py"

    VIOLATING = """\
        import time

        async def handle(request):
            time.sleep(0.1)
            return request
        """

    CLEAN = """\
        import asyncio

        async def handle(request):
            await asyncio.sleep(0.1)
            return request
        """

    def test_time_sleep_in_async_def_is_flagged(self):
        findings = run_rule(NoBlockingInAsyncRule(), self.VIOLATING, self.PATH)
        assert len(findings) == 1
        assert findings[0].code == "REP102"
        assert "asyncio.sleep" in findings[0].message

    def test_asyncio_sleep_is_clean(self):
        assert run_rule(NoBlockingInAsyncRule(), self.CLEAN, self.PATH) == []

    def test_blocking_service_api_is_flagged(self):
        source = """\
            async def handle(service, table):
                return service.annotate(table)
            """
        findings = run_rule(NoBlockingInAsyncRule(), source, self.PATH)
        assert len(findings) == 1
        assert "annotate" in findings[0].message

    def test_run_in_executor_reference_is_clean(self):
        # The sanctioned seam passes the blocking function by reference.
        source = """\
            async def handle(loop, service, table):
                return await loop.run_in_executor(None, service.annotate, table)
            """
        assert run_rule(NoBlockingInAsyncRule(), source, self.PATH) == []

    def test_nested_sync_def_is_skipped(self):
        # A def inside an async def runs wherever it is invoked (a worker
        # thread via the executor), not on the event loop.
        source = """\
            import time

            async def handle(loop):
                def blocking():
                    time.sleep(0.5)
                    return 1
                return await loop.run_in_executor(None, blocking)
            """
        assert run_rule(NoBlockingInAsyncRule(), source, self.PATH) == []

    def test_sync_defs_outside_gateway_scope(self):
        context = parse_snippet("async def f():\n    pass\n",
                                "src/repro/serve/service.py")
        assert not NoBlockingInAsyncRule().applies_to(context)


class TestMonotonicDeadlines:
    PATH = "src/repro/runtime/resilience.py"

    VIOLATING = """\
        import time

        def deadline(budget_s):
            return time.time() + budget_s
        """

    CLEAN = """\
        import time

        def deadline(budget_s):
            return time.monotonic() + budget_s
        """

    def test_wall_clock_is_flagged(self):
        findings = run_rule(MonotonicDeadlinesRule(), self.VIOLATING, self.PATH)
        assert len(findings) == 1
        assert findings[0].code == "REP103"
        assert "time.monotonic()" in findings[0].message

    def test_monotonic_is_clean(self):
        assert run_rule(MonotonicDeadlinesRule(), self.CLEAN, self.PATH) == []

    def test_from_import_alias_is_caught(self):
        source = """\
            from time import time as now

            def deadline(budget_s):
                return now() + budget_s
            """
        findings = run_rule(MonotonicDeadlinesRule(), source, self.PATH)
        assert len(findings) == 1 and "time.time" in findings[0].message

    def test_datetime_now_is_flagged(self):
        source = """\
            import datetime

            def stamp():
                return datetime.datetime.now()
            """
        findings = run_rule(MonotonicDeadlinesRule(), source, self.PATH)
        assert len(findings) == 1

    def test_module_alias_is_caught(self):
        source = """\
            import time as clock

            def deadline(budget_s):
                return clock.time() + budget_s
            """
        findings = run_rule(MonotonicDeadlinesRule(), source, self.PATH)
        assert len(findings) == 1 and "time.time" in findings[0].message

    def test_module_alias_monotonic_stays_clean(self):
        source = """\
            import time as clock

            def deadline(budget_s):
                return clock.monotonic() + budget_s
            """
        assert run_rule(MonotonicDeadlinesRule(), source, self.PATH) == []

    def test_datetime_class_alias_is_caught(self):
        source = """\
            from datetime import datetime as dt

            def stamp():
                return dt.now()
            """
        findings = run_rule(MonotonicDeadlinesRule(), source, self.PATH)
        assert len(findings) == 1 and "datetime.datetime.now" in findings[0].message

    def test_out_of_scope_module_is_ignored(self):
        context = parse_snippet(self.VIOLATING, "src/repro/data/io.py")
        assert not MonotonicDeadlinesRule().applies_to(context)


class TestTypedErrors:
    VIOLATING_RAISE = """\
        def fail():
            raise Exception("something broke")
        """

    VIOLATING_SWALLOW = """\
        def run(fn):
            try:
                return fn()
            except Exception:
                return None
        """

    CLEAN = """\
        class WorkerCrashed(RuntimeError):
            pass

        def run(fn):
            try:
                return fn()
            except Exception as error:
                raise WorkerCrashed(str(error)) from error
        """

    def test_raise_exception_is_flagged(self):
        findings = run_rule(TypedErrorsRule(), self.VIOLATING_RAISE)
        assert len(findings) == 1
        assert findings[0].code == "REP104"
        assert "raise Exception" in findings[0].message

    def test_swallowing_broad_except_is_flagged(self):
        findings = run_rule(TypedErrorsRule(), self.VIOLATING_SWALLOW)
        assert len(findings) == 1
        assert "except Exception" in findings[0].message

    def test_mapping_handler_is_clean(self):
        assert run_rule(TypedErrorsRule(), self.CLEAN) == []

    def test_bare_reraise_is_clean(self):
        source = """\
            def run(fn):
                try:
                    return fn()
                except Exception:
                    raise
            """
        assert run_rule(TypedErrorsRule(), source) == []

    def test_raise_in_nested_def_does_not_count(self):
        # The nested function's raise runs later, elsewhere — the handler
        # itself still swallows.
        source = """\
            def run(fn):
                try:
                    return fn()
                except Exception as error:
                    def later():
                        raise error
                    return later
            """
        findings = run_rule(TypedErrorsRule(), source)
        assert len(findings) == 1

    def test_errors_module_is_exempt(self):
        context = parse_snippet(self.VIOLATING_RAISE,
                                "src/repro/core/errors.py")
        assert not TypedErrorsRule().applies_to(context)

    def test_specific_except_is_clean(self):
        source = """\
            def run(fn):
                try:
                    return fn()
                except ValueError:
                    return None
            """
        assert run_rule(TypedErrorsRule(), source) == []


class TestSeededRng:
    VIOLATING = """\
        import numpy as np

        def sample():
            return np.random.default_rng().normal()
        """

    CLEAN = """\
        import numpy as np

        def sample(seed):
            return np.random.default_rng(seed).normal()
        """

    def test_unseeded_default_rng_is_flagged(self):
        findings = run_rule(SeededRngRule(), self.VIOLATING)
        assert len(findings) == 1
        assert findings[0].code == "REP105"
        assert "seed" in findings[0].message

    def test_seeded_default_rng_is_clean(self):
        assert run_rule(SeededRngRule(), self.CLEAN) == []

    def test_legacy_numpy_global_is_flagged(self):
        source = """\
            import numpy as np

            def sample():
                return np.random.rand(3)
            """
        findings = run_rule(SeededRngRule(), source)
        assert len(findings) == 1 and "global RNG state" in findings[0].message

    def test_stdlib_random_module_function_is_flagged(self):
        source = """\
            import random

            def sample():
                return random.random()
            """
        findings = run_rule(SeededRngRule(), source)
        assert len(findings) == 1

    def test_unseeded_random_instance_is_flagged_but_seeded_is_clean(self):
        unseeded = "import random\nrng = random.Random()\n"
        seeded = "import random\nrng = random.Random(7)\n"
        assert len(run_rule(SeededRngRule(), unseeded)) == 1
        assert run_rule(SeededRngRule(), seeded) == []

    def test_instance_stream_calls_are_clean(self):
        # self._rng.random resolves to the full dotted name, which never
        # collides with the module-level random.random.
        source = """\
            import random

            class Jitter:
                def __init__(self, seed):
                    self._rng = random.Random(seed)

                def draw(self):
                    return self._rng.random()
            """
        assert run_rule(SeededRngRule(), source) == []


class TestSocketTimeout:
    FLEET_PATH = "src/repro/fleet/mod.py"

    VIOLATING = """\
        import socket

        def dial(address):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.connect(address)  # no settimeout anywhere in scope
            return sock
        """

    CLEAN = """\
        import socket

        def dial(address, deadline_s, clock):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.settimeout(deadline_s - clock())
            sock.connect(address)
            return sock
        """

    def test_unbounded_connect_is_flagged(self):
        findings = run_rule(SocketTimeoutRule(), self.VIOLATING,
                            path=self.FLEET_PATH)
        assert len(findings) == 1
        assert findings[0].code == "REP106"
        assert "settimeout" in findings[0].message

    def test_connect_with_settimeout_is_clean(self):
        assert run_rule(SocketTimeoutRule(), self.CLEAN,
                        path=self.FLEET_PATH) == []

    def test_rule_is_scoped_to_fleet_and_gateway(self):
        context = parse_snippet(self.VIOLATING, path="src/repro/serve/mod.py")
        assert not SocketTimeoutRule().applies_to(context)

    def test_create_connection_without_timeout_is_flagged(self):
        unbounded = """\
            import socket

            def dial(address):
                return socket.create_connection(address)
            """
        keyword = """\
            import socket

            def dial(address, budget_s):
                return socket.create_connection(address, timeout=budget_s)
            """
        positional = """\
            import socket

            def dial(address, budget_s):
                return socket.create_connection(address, budget_s)
            """
        assert len(run_rule(SocketTimeoutRule(), unbounded,
                            path=self.FLEET_PATH)) == 1
        assert run_rule(SocketTimeoutRule(), keyword,
                        path=self.FLEET_PATH) == []
        assert run_rule(SocketTimeoutRule(), positional,
                        path=self.FLEET_PATH) == []

    def test_accept_covered_by_settimeout_in_sibling_method(self):
        # The replica server's split: bind + settimeout in start(), the
        # accept loop in serve_forever().  self.* receivers resolve across
        # the whole class.
        source = """\
            import socket

            class Server:
                def start(self):
                    self._listener = socket.socket()
                    self._listener.settimeout(0.2)

                def serve(self):
                    while True:
                        conn, _peer = self._listener.accept()
            """
        assert run_rule(SocketTimeoutRule(), source,
                        path=self.FLEET_PATH) == []

    def test_accept_without_any_settimeout_is_flagged(self):
        source = """\
            import socket

            class Server:
                def start(self):
                    self._listener = socket.socket()

                def serve(self):
                    conn, _peer = self._listener.accept()
            """
        findings = run_rule(SocketTimeoutRule(), source, path=self.FLEET_PATH)
        assert len(findings) == 1
        assert "accept" in findings[0].message

    def test_local_settimeout_does_not_leak_across_functions(self):
        source = """\
            import socket

            def bounded(sock):
                sock.settimeout(1.0)
                sock.connect(("h", 1))

            def unbounded(sock):
                sock.connect(("h", 1))
            """
        findings = run_rule(SocketTimeoutRule(), source, path=self.FLEET_PATH)
        assert len(findings) == 1
        assert findings[0].line > 5  # only the second function fires

    def test_open_connection_needs_wait_for(self):
        bare = """\
            import asyncio

            async def open(host, port):
                reader, writer = await asyncio.open_connection(host, port)
                return reader, writer
            """
        wrapped = """\
            import asyncio

            async def open(host, port):
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port), timeout=5.0
                )
                return reader, writer
            """
        findings = run_rule(SocketTimeoutRule(), bare,
                            path="src/repro/gateway/mod.py")
        assert len(findings) == 1
        assert "wait_for" in findings[0].message
        assert run_rule(SocketTimeoutRule(), wrapped,
                        path="src/repro/gateway/mod.py") == []

    def test_waiver_silences_the_finding(self):
        source = """\
            import socket

            def dial(address):
                sock = socket.socket()
                sock.connect(address)  # repro: allow[REP106] -- test fixture
                return sock
            """
        context = parse_snippet(source, path=self.FLEET_PATH)
        findings = list(SocketTimeoutRule().check(context))
        assert len(findings) == 1
        waivers = parse_waivers(str(context.path), context.comments)
        assert waivers.lookup("REP106", findings[0].line) is not None
