"""Edge-case and failure-injection tests across subsystems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import KGCandidateExtractor, Part1Config
from repro.core.serialization import SerializerConfig, TableSerializer
from repro.data.corpus import TableCorpus, stratified_split
from repro.data.table import Column, Table
from repro.experiments.__main__ import main as experiments_main
from repro.kg.bm25 import BM25Index
from repro.kg.graph import KnowledgeGraph
from repro.kg.linker import EntityLinker, LinkerConfig
from repro.text.tokenizer import WordPieceTokenizer


class TestDegenerateTables:
    def test_single_cell_table(self, graph, linker):
        extractor = KGCandidateExtractor(graph, Part1Config(top_k_rows=5), linker=linker)
        table = Table("one-cell", [Column(name="x", cells=["Peter"], label="Human")])
        processed = extractor.process_table(table)
        assert processed.filtered.n_rows == 1
        assert len(processed.columns) == 1

    def test_table_of_empty_strings(self, graph, linker):
        extractor = KGCandidateExtractor(graph, Part1Config(top_k_rows=5), linker=linker)
        table = Table("empty-cells", [Column(name="x", cells=["", "", ""], label="name")])
        processed = extractor.process_table(table)
        assert not processed.columns[0].has_kg_links
        assert processed.columns[0].candidate_types == []

    def test_punctuation_only_cells(self, graph, linker):
        extractor = KGCandidateExtractor(graph, Part1Config(top_k_rows=5), linker=linker)
        table = Table("punct", [Column(name="x", cells=["???", "---", "..."], label="code")])
        processed = extractor.process_table(table)
        assert len(processed.columns) == 1

    def test_serializer_handles_column_with_only_long_cells(self, tokenizer, graph, linker):
        extractor = KGCandidateExtractor(graph, Part1Config(top_k_rows=3), linker=linker)
        long_text = "a very long address " * 30
        table = Table("long", [Column(name="addr", cells=[long_text] * 3, label="address")])
        serializer = TableSerializer(tokenizer, SerializerConfig(max_tokens_per_column=16,
                                                                 max_sequence_length=64))
        serialized = serializer.serialize(extractor.process_table(table))
        assert serialized.sequence_length <= 64

    def test_more_columns_than_budget_truncated(self, tokenizer, graph, linker):
        extractor = KGCandidateExtractor(graph, Part1Config(top_k_rows=3), linker=linker)
        columns = [Column(name=f"c{i}", cells=["x", "y"], label="name") for i in range(12)]
        table = Table("wide", columns)
        serializer = TableSerializer(tokenizer, SerializerConfig(max_columns=8))
        serialized = serializer.serialize(extractor.process_table(table))
        assert serialized.n_columns == 8


class TestDegenerateCorpora:
    def test_split_of_single_class_corpus(self):
        tables = [
            Table(f"t{i}", [Column(name="c", cells=["a", "b"], label="only")])
            for i in range(10)
        ]
        splits = stratified_split(TableCorpus("single-class", tables), seed=0)
        assert len(splits.train) + len(splits.validation) + len(splits.test) == 10

    def test_split_of_two_table_corpus(self):
        tables = [
            Table("t0", [Column(name="c", cells=["a"], label="x")]),
            Table("t1", [Column(name="c", cells=["b"], label="y")]),
        ]
        splits = stratified_split(TableCorpus("tiny", tables), seed=0)
        total = len(splits.train) + len(splits.validation) + len(splits.test)
        assert total == 2

    def test_corpus_statistics_empty_tables_list(self):
        corpus = TableCorpus("empty", tables=[
            Table("t", [Column(name="c", cells=["1"], label="x")])
        ])
        corpus.tables = []
        stats = corpus.statistics()
        assert stats["columns"] == 0
        assert stats["numeric_column_fraction"] == 0.0


class TestEmptySubstrates:
    def test_empty_bm25_index_search(self):
        assert BM25Index().search("anything") == []

    def test_linker_on_empty_graph(self):
        graph = KnowledgeGraph()
        linker = EntityLinker(graph, LinkerConfig(max_candidates=3))
        assert linker.link("Peter Steele") == []
        assert linker.linking_score("Peter Steele") == 0.0

    def test_tokenizer_trained_on_empty_corpus_still_usable(self):
        tokenizer = WordPieceTokenizer.train([], vocab_size=50)
        assert tokenizer.encode("anything") != []  # falls back to [UNK] pieces
        assert all(0 <= i < tokenizer.vocab_size for i in tokenizer.encode("anything"))

    def test_tokenizer_unknown_script_text(self, tokenizer):
        ids = tokenizer.encode("Ω≈ç√∫˜µ")
        assert all(0 <= i < tokenizer.vocab_size for i in ids)


class TestExperimentsCLI:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            experiments_main(["not-an-experiment"])
        assert excinfo.value.code != 0

    def test_paper_profile_rejected_by_choices(self):
        with pytest.raises(SystemExit):
            experiments_main(["table1", "--profile", "paper"])

    def test_help_exits_cleanly(self):
        with pytest.raises(SystemExit) as excinfo:
            experiments_main(["--help"])
        assert excinfo.value.code == 0


class TestNumericRobustness:
    def test_numeric_summary_with_commas_and_garbage(self):
        column = Column(name="n", cells=["1,000", "2,500", "n/a", ""])
        summary = KGCandidateExtractor._numeric_summary(column)
        assert summary[0] == "1750.00"

    def test_numeric_summary_all_garbage(self):
        column = Column(name="n", cells=["n/a", "-", ""])
        assert KGCandidateExtractor._numeric_summary(column) == ["0", "0", "0"]

    def test_cross_entropy_with_single_class_logits(self):
        from repro.nn import functional as F
        from repro.nn.tensor import Tensor

        loss = F.cross_entropy(Tensor(np.zeros((3, 1))), np.zeros(3, dtype=int))
        assert float(loss.data) == pytest.approx(0.0)
