"""Tests of experiment result containers, rendering and profiles."""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import PROFILES, get_profile, load_resources
from repro.experiments.references import TABLE1_REFERENCE, TABLE2_REFERENCE
from repro.experiments.reporting import ExperimentResult, format_table


class TestFormatTable:
    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_header_and_rows_aligned(self):
        text = format_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # all lines same width

    def test_floats_formatted_to_two_decimals(self):
        text = format_table([{"value": 3.14159}])
        assert "3.14" in text and "3.1416" not in text

    def test_explicit_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            name="demo",
            description="a demo experiment",
            rows=[{"model": "KGLink", "accuracy": 90.0}],
            paper_reference=[{"model": "KGLink", "accuracy": 87.12}],
            notes="shape preserved",
        )

    def test_render_contains_all_sections(self):
        text = self._result().render()
        assert "demo" in text
        assert "Measured" in text
        assert "Paper-reported" in text
        assert "shape preserved" in text

    def test_to_json_roundtrip(self):
        payload = json.loads(self._result().to_json())
        assert payload["name"] == "demo"
        assert payload["rows"][0]["accuracy"] == 90.0

    def test_save_writes_file(self, tmp_path):
        path = self._result().save(tmp_path)
        assert path.exists()
        assert json.loads(path.read_text())["description"] == "a demo experiment"

    def test_render_without_reference(self):
        result = ExperimentResult(name="x", description="y", rows=[{"a": 1}])
        assert "Paper-reported" not in result.render()


class TestProfiles:
    def test_known_profiles_exist(self):
        assert {"smoke", "default", "paper"} <= set(PROFILES)

    def test_get_profile_unknown_raises(self):
        with pytest.raises(KeyError):
            get_profile("gigantic")

    def test_paper_profile_documents_original_settings(self):
        paper = get_profile("paper")
        assert paper.epochs == 50
        assert paper.hidden_size == 768
        assert paper.top_k_rows == 25

    def test_paper_profile_not_materialisable(self):
        with pytest.raises(RuntimeError):
            load_resources("paper")

    def test_kglink_config_overrides(self):
        profile = get_profile("smoke")
        config = profile.kglink_config(use_mask_task=False, top_k_rows=3)
        assert config.use_mask_task is False
        assert config.top_k_rows == 3
        assert config.epochs == profile.epochs

    def test_baseline_config_mirrors_profile(self):
        profile = get_profile("smoke")
        config = profile.baseline_config()
        assert config.epochs == profile.epochs
        assert config.max_rows == profile.top_k_rows

    def test_part1_config_override(self):
        profile = get_profile("smoke")
        assert profile.part1_config(row_filter="original").row_filter == "original"


class TestReferences:
    def test_table1_reference_covers_all_models_and_datasets(self):
        models = {row["model"] for row in TABLE1_REFERENCE}
        datasets = {row["dataset"] for row in TABLE1_REFERENCE}
        assert models == {"MTab", "TaBERT", "Doduo", "HNN", "Sudowoodo", "RECA", "KGLink"}
        assert datasets == {"semtab", "viznet"}
        assert len(TABLE1_REFERENCE) == 14

    def test_table1_kglink_numbers_match_paper(self):
        kglink_semtab = next(
            row for row in TABLE1_REFERENCE
            if row["model"] == "KGLink" and row["dataset"] == "semtab"
        )
        assert kglink_semtab["accuracy"] == pytest.approx(87.12)
        assert kglink_semtab["weighted_f1"] == pytest.approx(85.78)

    def test_table2_reference_has_five_variants(self):
        assert len(TABLE2_REFERENCE) == 5
