"""Tests of the measured-vs-paper shape comparison utilities."""

from __future__ import annotations

import pytest

from repro.experiments.references import TABLE1_REFERENCE
from repro.experiments.shape import ordering_report, pairwise_order_agreement


def rows(values: dict[str, float], dataset: str | None = None) -> list[dict]:
    out = []
    for model, accuracy in values.items():
        row = {"model": model, "accuracy": accuracy}
        if dataset is not None:
            row["dataset"] = dataset
        out.append(row)
    return out


class TestPairwiseOrderAgreement:
    def test_identical_ordering_scores_one(self):
        reference = rows({"A": 90.0, "B": 80.0, "C": 70.0})
        measured = rows({"A": 55.0, "B": 44.0, "C": 33.0})
        result = pairwise_order_agreement(measured, reference)
        assert result.score == pytest.approx(1.0)
        assert result.disagreeing_pairs == []

    def test_fully_reversed_ordering_scores_zero(self):
        reference = rows({"A": 90.0, "B": 80.0, "C": 70.0})
        measured = rows({"A": 10.0, "B": 20.0, "C": 30.0})
        result = pairwise_order_agreement(measured, reference)
        assert result.score == pytest.approx(0.0)
        assert len(result.disagreeing_pairs) == 3

    def test_partial_disagreement_names_the_pair(self):
        reference = rows({"A": 90.0, "B": 80.0, "C": 70.0})
        measured = rows({"A": 90.0, "B": 60.0, "C": 70.0})
        result = pairwise_order_agreement(measured, reference)
        assert result.disagreeing_pairs == [("B", "C")]
        assert result.score == pytest.approx(2 / 3)

    def test_near_ties_count_as_agreement(self):
        reference = rows({"A": 90.0, "B": 89.8})
        measured = rows({"A": 70.0, "B": 75.0})
        assert pairwise_order_agreement(measured, reference).score == pytest.approx(1.0)

    def test_items_missing_from_one_side_are_ignored(self):
        reference = rows({"A": 90.0, "B": 80.0, "D": 75.0})
        measured = rows({"A": 50.0, "B": 40.0, "C": 30.0})
        result = pairwise_order_agreement(measured, reference)
        assert result.comparisons == 1

    def test_non_numeric_reference_values_ignored(self):
        reference = [{"model": "MTab", "accuracy": None}, {"model": "A", "accuracy": 90.0},
                     {"model": "B", "accuracy": 80.0}]
        measured = rows({"MTab": 50.0, "A": 60.0, "B": 40.0})
        result = pairwise_order_agreement(measured, reference)
        assert result.comparisons == 1

    def test_empty_inputs_score_one(self):
        assert pairwise_order_agreement([], []).score == pytest.approx(1.0)


class TestOrderingReport:
    def test_per_group_scores(self):
        reference = rows({"A": 90.0, "B": 80.0}, "semtab") + rows({"A": 70.0, "B": 85.0}, "viznet")
        measured = rows({"A": 60.0, "B": 50.0}, "semtab") + rows({"A": 66.0, "B": 55.0}, "viznet")
        report = ordering_report(measured, reference)
        assert report["semtab"].score == pytest.approx(1.0)
        assert report["viznet"].score == pytest.approx(0.0)

    def test_against_paper_reference_structure(self):
        # Using the paper's own numbers as "measured" must give perfect agreement.
        report = ordering_report(TABLE1_REFERENCE, TABLE1_REFERENCE)
        assert set(report) == {"semtab", "viznet"}
        assert all(group.score == pytest.approx(1.0) for group in report.values())

    def test_groups_missing_on_one_side_skipped(self):
        reference = rows({"A": 90.0, "B": 80.0}, "semtab")
        measured = rows({"A": 60.0, "B": 50.0}, "viznet")
        assert ordering_report(measured, reference) == {}
