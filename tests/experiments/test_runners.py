"""Tests of the experiment runner plumbing (model construction and caching).

These tests build annotators without fitting them (fast) and run the cheap
experiments (Table III) end to end against session fixtures; the full
experiment suite is exercised by the benchmark harness instead.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    DoduoAnnotator,
    HNNAnnotator,
    MTabAnnotator,
    RECAAnnotator,
    SherlockAnnotator,
    SudowoodoAnnotator,
    TaBERTAnnotator,
)
from repro.core.annotator import KGLinkAnnotator
from repro.data.corpus import CorpusSplits
from repro.experiments.config import SharedResources, get_profile
from repro.experiments.runners import TABLE1_MODELS, build_annotator
from repro.experiments import table3
from repro.kg.linker import EntityLinker, LinkerConfig


@pytest.fixture(scope="module")
def tiny_resources(world, semtab_corpus, viznet_corpus, semtab_splits):
    from repro.data.corpus import stratified_split

    return SharedResources(
        profile=get_profile("smoke"),
        world=world,
        linker=EntityLinker(world.graph, LinkerConfig(max_candidates=5)),
        semtab=semtab_corpus,
        viznet=viznet_corpus,
        semtab_splits=semtab_splits,
        viznet_splits=stratified_split(viznet_corpus, seed=2),
    )


EXPECTED_TYPES = {
    "MTab": MTabAnnotator,
    "TaBERT": TaBERTAnnotator,
    "Doduo": DoduoAnnotator,
    "HNN": HNNAnnotator,
    "Sudowoodo": SudowoodoAnnotator,
    "RECA": RECAAnnotator,
    "KGLink": KGLinkAnnotator,
    "Sherlock": SherlockAnnotator,
}


class TestBuildAnnotator:
    @pytest.mark.parametrize("name", sorted(EXPECTED_TYPES))
    def test_returns_expected_type(self, name, tiny_resources):
        annotator = build_annotator(name, tiny_resources, tiny_resources.profile)
        assert isinstance(annotator, EXPECTED_TYPES[name])

    def test_unknown_name_raises(self, tiny_resources):
        with pytest.raises(KeyError):
            build_annotator("GPT", tiny_resources, tiny_resources.profile)

    def test_kglink_overrides_applied(self, tiny_resources):
        annotator = build_annotator("KGLink", tiny_resources, tiny_resources.profile,
                                    use_mask_task=False)
        assert annotator.config.use_mask_task is False

    def test_overrides_rejected_for_baselines(self, tiny_resources):
        with pytest.raises(ValueError):
            build_annotator("Doduo", tiny_resources, tiny_resources.profile, use_mask_task=False)

    def test_table1_models_cover_paper_rows(self):
        assert TABLE1_MODELS == ("MTab", "TaBERT", "Doduo", "HNN", "Sudowoodo", "RECA", "KGLink")


class TestSharedResources:
    def test_splits_and_corpus_lookup(self, tiny_resources):
        assert tiny_resources.corpus("semtab").name == "semtab"
        assert isinstance(tiny_resources.splits("viznet"), CorpusSplits)

    def test_unknown_dataset_raises(self, tiny_resources):
        with pytest.raises(KeyError):
            tiny_resources.corpus("webtables")
        with pytest.raises(KeyError):
            tiny_resources.splits("webtables")


class TestTable3Runner:
    def test_rows_and_shape_properties(self, tiny_resources):
        result = table3.run(tiny_resources, tiny_resources.profile)
        assert {row["dataset"] for row in result.rows} == {"semtab", "viznet"}
        semtab_row = next(row for row in result.rows if row["dataset"] == "semtab")
        viznet_row = next(row for row in result.rows if row["dataset"] == "viznet")
        # Structural properties the paper's Table III reports:
        assert semtab_row["numeric_columns"] == 0
        assert viznet_row["numeric_columns"] > 0
        assert viznet_row["without_ct_pct"] >= semtab_row["without_ct_pct"]
        assert result.paper_reference

    def test_results_cached_in_resources(self, tiny_resources):
        table3.run(tiny_resources, tiny_resources.profile)
        assert ("table3", "semtab") in tiny_resources.cache
