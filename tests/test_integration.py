"""End-to-end integration tests across all subsystems.

These tests run the complete KGLink pipeline (KG construction → corpus
generation → Part 1 → Part 2 training → evaluation) at a very small scale and
assert the qualitative properties the paper's evaluation relies on, rather
than exact numbers.
"""

from __future__ import annotations

import pytest

from repro.baselines import MTabAnnotator
from repro.core.annotator import KGLinkAnnotator, KGLinkConfig
from repro.core.pipeline import KGCandidateExtractor, Part1Config


SMALL_CONFIG = dict(
    epochs=6, batch_size=4, learning_rate=1.5e-3, pretrain_steps=10,
    hidden_size=48, num_layers=1, num_heads=2, intermediate_size=64,
    top_k_rows=8, max_tokens_per_column=18, vocab_size=1500,
    max_position_embeddings=200, max_feature_tokens=12,
)


@pytest.fixture(scope="module")
def kglink(graph, linker, semtab_splits):
    annotator = KGLinkAnnotator(graph, KGLinkConfig(**SMALL_CONFIG), linker=linker)
    validation = semtab_splits.validation if len(semtab_splits.validation.tables) else None
    annotator.fit(semtab_splits.train, validation)
    return annotator


class TestEndToEndKGLink:
    def test_learns_well_above_majority_baseline(self, kglink, semtab_splits):
        result = kglink.evaluate(semtab_splits.test)
        counts = semtab_splits.test.label_counts()
        majority = 100.0 * counts.most_common(1)[0][1] / sum(counts.values())
        assert result.accuracy > majority + 10.0

    def test_training_loss_decreased(self, kglink):
        history = kglink.history
        assert history is not None
        first = sum(history.classification_losses[:3]) / 3
        last = sum(history.classification_losses[-3:]) / 3
        assert last < first

    def test_sigma_values_were_adapted(self, kglink):
        history = kglink.history
        assert history.sigma0_trajectory[0] != history.sigma0_trajectory[-1] or \
            history.sigma1_trajectory[0] != history.sigma1_trajectory[-1]

    def test_candidate_types_usually_relevant(self, kglink, semtab_splits):
        """Part 1 sanity: for KG-derived tables the ground-truth label often
        appears among the extracted candidate types (the paper's motivation for
        using them)."""
        extractor = kglink.extractor
        hit, total = 0, 0
        for table in semtab_splits.test.tables[:10]:
            processed = extractor.process_table(table)
            for info in processed.columns:
                if not info.candidate_types or info.label is None:
                    continue
                total += 1
                if info.label.lower() in {ct.lower() for ct in info.candidate_types}:
                    hit += 1
        if total:
            assert hit / total > 0.3

    def test_annotating_unseen_table_gives_known_labels(self, kglink, viznet_corpus):
        table = viznet_corpus.tables[0]
        predictions = kglink.annotate(table)
        assert all(label in kglink.label_vocabulary for label in predictions)


class TestCrossMethodShapeChecks:
    def test_mtab_beats_majority_on_semtab_but_not_kglink_on_viznet_style_labels(
        self, graph, linker, semtab_splits, kglink
    ):
        mtab = MTabAnnotator(graph, Part1Config(top_k_rows=8), linker=linker)
        mtab.fit(semtab_splits.train)
        mtab_result = mtab.evaluate(semtab_splits.test)
        kglink_result = kglink.evaluate(semtab_splits.test)
        counts = semtab_splits.test.label_counts()
        majority = 100.0 * counts.most_common(1)[0][1] / sum(counts.values())
        assert mtab_result.accuracy > majority
        # Both methods must be in a sensible range; exact ordering depends on scale.
        assert kglink_result.accuracy > 50.0

    def test_row_filter_consistency(self, graph, linker, semtab_splits):
        """The linkage-based row filter keeps the rows with the highest scores."""
        extractor = KGCandidateExtractor(graph, Part1Config(top_k_rows=3), linker=linker)
        table = semtab_splits.test.tables[0]
        processed = extractor.process_table(table)
        kept_scores = [processed.row_scores[i] for i in processed.kept_row_indices]
        dropped_scores = [
            score for i, score in enumerate(processed.row_scores)
            if i not in processed.kept_row_indices
        ]
        if dropped_scores and kept_scores:
            assert min(kept_scores) >= max(dropped_scores) - 1e-9


class TestGeneralisationAcrossCorpora:
    def test_kglink_handles_numeric_columns(self, kglink, viznet_corpus):
        """Even though the SemTab-style training corpus has no numeric columns,
        annotating a numeric column must not crash and must return a label."""
        numeric_tables = [
            table for table in viznet_corpus.tables
            if any(column.is_numeric() for column in table.columns)
        ]
        assert numeric_tables
        predictions = kglink.annotate(numeric_tables[0])
        assert len(predictions) >= 1
