"""Router: routing, failover, breakers, the shared cache, and the gateway seam."""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.core.errors import ReplicaUnavailable, ServiceClosed
from repro.fleet import FleetRouter, ReplicaSupervisor, ThreadLauncher
from repro.fleet.supervisor import FleetMember
from repro.runtime.resilience import CircuitBreaker, RuntimePolicy

from tests.fleet.util import FakeService, make_tables, start_fleet
from tests.gateway.util import FakeClock, get, post_annotate, running_gateway

FAST_POLICY = RuntimePolicy(backoff_base_s=0.001, backoff_max_s=0.01)


def manual_fleet(replicas=2, *, max_restarts=3, service_factory=None,
                 **router_kwargs):
    """Like start_fleet but with supervisor knobs exposed."""
    factory = service_factory or (lambda name: FakeService(name))
    launcher = ThreadLauncher(factory)
    supervisor = ReplicaSupervisor(
        launcher, replicas, policy=FAST_POLICY,
        heartbeat_interval_s=60.0, max_restarts=max_restarts,
    )
    supervisor.start()
    router = FleetRouter(supervisor, own_supervisor=True, **router_kwargs)
    return launcher, supervisor, router


class TestRouting:
    def test_round_trip_over_real_sockets(self):
        _launcher, _supervisor, router = start_fleet(2)
        with router:
            results = router.annotate_batch(make_tables(3))
            assert results == [["label:t0"], ["label:t1"], ["label:t2"]]
            stats = router.stats()
            assert stats.requests == 1
            assert stats.tables == 3
            assert stats.dispatches == 1

    def test_load_spreads_across_replicas(self):
        launcher, _supervisor, router = start_fleet(2)
        with router:
            for index in range(6):
                router.annotate_batch(make_tables(1, prefix=f"r{index}-"))
            served = [sum(count for count, _ in handle.service.calls)
                      for handle in launcher.launched]
            assert sum(served) == 6

    def test_least_outstanding_avoids_the_busy_replica(self):
        hold = threading.Event()
        entered = threading.Event()

        def slow(tables, budget_s):
            entered.set()
            hold.wait(10.0)
            return [["slow"] for _ in tables]

        def factory(name):
            if name == "replica-0":
                return FakeService(name, annotate=slow)
            return FakeService(name)

        launcher, _supervisor, router = start_fleet(
            2, service_factory=factory)
        with router:
            background = threading.Thread(
                target=router.annotate_batch,
                args=(make_tables(1, prefix="busy-"),))
            background.start()
            try:
                assert entered.wait(5.0)  # replica-0 is now holding a batch
                # With replica-0 at one outstanding request, the next batch
                # must land on replica-1 — and return while 0 is still stuck.
                results = router.annotate_batch(make_tables(1, prefix="free-"))
                assert results == [["label:free-0"]]
                assert launcher.launched[1].service.calls != []
            finally:
                hold.set()
                background.join(timeout=5.0)

    def test_failover_survives_a_dead_replica(self):
        launcher, _supervisor, router = start_fleet(2)
        with router:
            launcher.launched[0].crash()
            results = router.annotate_batch(make_tables(2))
            assert results == [["label:t0"], ["label:t1"]]
            stats = router.stats()
            assert stats.failovers + stats.replica_errors >= 1
            assert stats.rejected == 0

    def test_all_replicas_dead_is_replica_unavailable(self):
        launcher, _supervisor, router = start_fleet(2)
        with router:
            for handle in launcher.launched:
                handle.crash()
            with pytest.raises(ReplicaUnavailable, match="no healthy replica"):
                router.annotate_batch(make_tables(1))
            assert router.stats().rejected == 1

    def test_respawned_replica_is_redialed_automatically(self):
        launcher, supervisor, router = start_fleet(1)
        with router:
            router.annotate_batch(make_tables(1, prefix="a-"))
            launcher.launched[0].crash()
            supervisor.check_now()  # respawn: same slot name, new port
            results = router.annotate_batch(make_tables(1, prefix="b-"))
            assert results == [["label:b-0"]]
            assert supervisor.stats()["restarts"] == 1

    def test_closed_router_refuses_requests(self):
        _launcher, _supervisor, router = start_fleet(1)
        router.close()
        with pytest.raises(ServiceClosed):
            router.annotate_batch(make_tables(1))

    def test_close_stops_an_owned_supervisor(self):
        _launcher, supervisor, router = start_fleet(2)
        router.close()
        assert supervisor.stats()["up"] == 0

    def test_close_is_idempotent(self):
        _launcher, _supervisor, router = start_fleet(1)
        router.close()
        router.close()


class FakeEndpoint:
    """A scripted replica endpoint — no sockets, failures on demand."""

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.fail = False
        self.closed = False

    def request(self, op, payload=None, *, deadline_s=None):
        self.calls += 1
        if self.fail:
            raise ReplicaUnavailable(f"{self.name} is down")
        return [[f"{self.name}:ok"] for _ in payload["tables"]]

    def close(self):
        self.closed = True


class FakeSupervisor:
    """Static membership for pure routing-logic tests."""

    def __init__(self, names, policy):
        self.names = list(names)
        self.policy = policy
        self.stopped = False

    def _member(self, name):
        return FleetMember(name=name, state="up",
                           address=("127.0.0.1", 1), restarts=0,
                           generation=1, last_health={"status": "healthy"})

    def members(self):
        return [self._member(name) for name in self.names]

    def describe(self):
        return self.members()

    def stats(self):
        return {"replicas": len(self.names), "up": len(self.names),
                "failed": 0, "spawned": len(self.names), "restarts": 0,
                "heartbeats": 0, "heartbeat_failures": 0, "gave_up": 0}

    def failure_reasons(self):
        return {}

    def stop(self):
        self.stopped = True


class TestBreakers:
    """Driven on a fake clock: no sockets, no sleeps."""

    def make(self, *, threshold=2, reset_s=30.0):
        clock = FakeClock()
        policy = RuntimePolicy(breaker_threshold=threshold,
                               breaker_reset_s=reset_s)
        endpoints = {name: FakeEndpoint(name) for name in ("replica-0",
                                                           "replica-1")}
        router = FleetRouter(
            FakeSupervisor(endpoints, policy), policy=policy,
            endpoint_factory=lambda name, address: endpoints[name],
            clock=clock,
        )
        return clock, endpoints, router

    def test_repeated_failures_open_the_breaker(self):
        _clock, endpoints, router = self.make(threshold=2)
        endpoints["replica-0"].fail = True
        # Two batches: each fails over 0 -> 1, charging replica-0's breaker.
        router.annotate_batch(make_tables(1, prefix="a-"))
        router.annotate_batch(make_tables(1, prefix="b-"))
        assert endpoints["replica-0"].calls == 2
        # Breaker now open: replica-0 is not even tried.
        router.annotate_batch(make_tables(1, prefix="c-"))
        assert endpoints["replica-0"].calls == 2
        assert endpoints["replica-1"].calls == 3
        assert router.health().breakers["replica-0"] == CircuitBreaker.OPEN

    def test_half_open_probe_readmits_a_recovered_replica(self):
        clock, endpoints, router = self.make(threshold=2, reset_s=30.0)
        endpoints["replica-0"].fail = True
        router.annotate_batch(make_tables(1, prefix="a-"))
        router.annotate_batch(make_tables(1, prefix="b-"))
        endpoints["replica-0"].fail = False  # replica recovers...
        router.annotate_batch(make_tables(1, prefix="c-"))
        assert endpoints["replica-0"].calls == 2  # ...but stays ejected
        clock.advance(31.0)  # cool-down elapses -> half-open
        results = router.annotate_batch(make_tables(1, prefix="d-"))
        assert results == [["replica-0:ok"]]  # the probe went to replica-0
        assert endpoints["replica-0"].calls == 3
        assert router.health().breakers["replica-0"] == CircuitBreaker.CLOSED

    def test_failed_probe_reopens_immediately(self):
        clock, endpoints, router = self.make(threshold=2, reset_s=30.0)
        endpoints["replica-0"].fail = True
        router.annotate_batch(make_tables(1, prefix="a-"))
        router.annotate_batch(make_tables(1, prefix="b-"))
        clock.advance(31.0)
        router.annotate_batch(make_tables(1, prefix="c-"))  # probe fails over
        assert endpoints["replica-0"].calls == 3
        assert router.health().breakers["replica-0"] == CircuitBreaker.OPEN
        router.annotate_batch(make_tables(1, prefix="d-"))  # window restarted
        assert endpoints["replica-0"].calls == 3

    def test_failover_counts_in_stats(self):
        _clock, endpoints, router = self.make()
        endpoints["replica-0"].fail = True
        router.annotate_batch(make_tables(1))
        stats = router.stats()
        assert stats.failovers == 1
        assert stats.replica_errors == 1
        assert stats.dispatches == 2  # one failed, one succeeded


class TestSharedCache:
    def test_repeat_batch_is_served_from_memory(self):
        launcher, _supervisor, router = start_fleet(2)
        with router:
            first = router.annotate_batch(make_tables(3))
            dispatches = router.stats().dispatches
            second = router.annotate_batch(make_tables(3))
            assert second == first
            stats = router.stats()
            assert stats.dispatches == dispatches  # no extra wire trip
            assert stats.results_cache["hits"] == 3
            assert stats.results_cache["misses"] == 3

    def test_in_batch_duplicates_dispatch_once(self):
        launcher, _supervisor, router = start_fleet(1)
        with router:
            table = make_tables(1)[0]
            results = router.annotate_batch([table, dict(table), table])
            assert results == [["label:t0"]] * 3
            served = sum(count for count, _ in
                         launcher.launched[0].service.calls)
            assert served == 1  # one wire table for three positions
            assert router.stats().tables == 3

    def test_concurrent_duplicate_joins_the_lead(self):
        hold = threading.Event()
        entered = threading.Event()

        def slow(tables, budget_s):
            entered.set()
            hold.wait(10.0)
            return [[f"label:{t['table_id']}"] for t in tables]

        launcher, _supervisor, router = start_fleet(
            2, service_factory=lambda name: FakeService(name, annotate=slow))
        with router:
            table = make_tables(1)[0]
            results: list = []

            def call():
                results.append(router.annotate_batch([table]))

            threads = [threading.Thread(target=call) for _ in range(2)]
            threads[0].start()
            assert entered.wait(5.0)  # the lead is on the wire
            threads[1].start()
            deadline = time.monotonic() + 5.0
            while (router.stats().results_cache["coalesced"] < 1
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            hold.set()
            for thread in threads:
                thread.join(timeout=5.0)
            assert results == [[["label:t0"]], [["label:t0"]]]
            served = sum(count for handle in launcher.launched
                         for count, _ in handle.service.calls)
            assert served == 1  # the duplicate never travelled the wire
            assert router.stats().results_cache["coalesced"] == 1

    def test_failed_lead_releases_joiners_and_key(self):
        launcher, _supervisor, router = start_fleet(2)
        with router:
            for handle in launcher.launched:
                handle.crash()
            with pytest.raises(ReplicaUnavailable):
                router.annotate_batch(make_tables(1))
        # The key was not wedged by the failure: a fresh fleet serves it.
        _launcher2, _supervisor2, router2 = start_fleet(1, cache=router.cache)
        with router2:
            assert router2.annotate_batch(make_tables(1)) == [["label:t0"]]


class TestStatsAndHealth:
    def test_stats_to_dict_is_flat_and_numeric(self):
        _launcher, supervisor, router = start_fleet(2)
        with router:
            supervisor.check_now()
            router.annotate_batch(make_tables(2))
            payload = router.stats().to_dict()
            assert all(isinstance(value, (int, float))
                       for value in payload.values()), payload
            for key in ("requests", "tables", "dispatches", "failovers",
                        "results_cache_hits", "results_cache_misses",
                        "results_cache_coalesced", "fleet_spawned",
                        "fleet_restarts", "fleet_up"):
                assert key in payload

    def test_healthy_fleet_reports_per_replica_detail(self):
        _launcher, supervisor, router = start_fleet(2)
        with router:
            supervisor.check_now()  # heartbeats cache each replica's health
            health = router.health()
            assert health.status == "healthy"
            assert health.reasons == ()
            payload = health.to_dict()
            json.dumps(payload)  # must be JSON-safe for /healthz
            assert set(payload["replicas"]) == {"replica-0", "replica-1"}
            for info in payload["replicas"].values():
                assert info["state"] == "up"
                assert info["status"] == "healthy"
                assert info["breaker"] == CircuitBreaker.CLOSED

    def test_failed_slot_degrades_the_fleet(self):
        launcher, supervisor, router = manual_fleet(2, max_restarts=0)
        with router:
            launcher.launched[0].crash()
            supervisor.check_now()  # exhausts the (zero) restart budget
            health = router.health()
            assert health.status == "degraded"
            assert any("replica-0" in reason for reason in health.reasons)
            payload = health.to_dict()
            assert payload["replicas"]["replica-0"]["state"] == "failed"
            assert payload["replicas"]["replica-1"]["state"] == "up"

    def test_no_live_replicas_is_failed(self):
        launcher, supervisor, router = manual_fleet(1, max_restarts=0)
        with router:
            launcher.launched[0].crash()
            supervisor.check_now()
            health = router.health()
            assert health.status == "failed"
            assert health.reasons[0] == "no live replicas"

    def test_closed_router_health_is_failed(self):
        _launcher, _supervisor, router = start_fleet(1)
        router.close()
        health = router.health()
        assert health.status == "failed"
        assert health.reasons == ("fleet router closed",)


class TestGatewaySeam:
    """The router in the gateway's service seat — satellite (d)."""

    def test_annotate_flows_through_gateway_to_fleet(self):
        async def main():
            launcher, _supervisor, router = start_fleet(2)
            async with running_gateway(router) as gateway:
                response = await post_annotate(gateway, {
                    "table_id": "t9",
                    "columns": [{"name": "c0", "cells": ["x"]}],
                })
                assert response.status == 200
                assert response.json()["predictions"] == ["label:t9"]
            served = sum(count for handle in launcher.launched
                         for count, _ in handle.service.calls)
            assert served == 1
        asyncio.run(main())

    def test_healthz_aggregates_per_replica_health(self):
        async def main():
            _launcher, supervisor, router = start_fleet(2)
            supervisor.check_now()
            async with running_gateway(router) as gateway:
                response = await get(gateway, "/healthz")
                assert response.status == 200
                payload = response.json()
                assert payload["status"] == "healthy"
                assert payload["gateway"] == "serving"
                assert set(payload["replicas"]) == {"replica-0", "replica-1"}
                assert payload["replicas"]["replica-0"]["status"] == "healthy"
        asyncio.run(main())

    def test_degraded_fleet_is_200_with_reasons(self):
        async def main():
            launcher, supervisor, router = manual_fleet(2, max_restarts=0)
            launcher.launched[1].crash()
            supervisor.check_now()
            async with running_gateway(router) as gateway:
                response = await get(gateway, "/healthz")
                assert response.status == 200  # still answering
                payload = response.json()
                assert payload["status"] == "degraded"
                assert any("replica-1" in reason
                           for reason in payload["reasons"])
        asyncio.run(main())

    def test_dead_fleet_is_503_on_healthz(self):
        async def main():
            launcher, supervisor, router = manual_fleet(1, max_restarts=0)
            launcher.launched[0].crash()
            supervisor.check_now()
            async with running_gateway(router) as gateway:
                response = await get(gateway, "/healthz")
                assert response.status == 503
                assert response.json()["status"] == "failed"
        asyncio.run(main())

    def test_replica_unavailable_maps_to_503_with_retry_after(self):
        async def main():
            launcher, supervisor, router = manual_fleet(1, max_restarts=0)
            launcher.launched[0].crash()
            supervisor.check_now()
            async with running_gateway(router) as gateway:
                response = await post_annotate(gateway, {
                    "table_id": "t0",
                    "columns": [{"name": "c0", "cells": ["x"]}],
                })
                assert response.status == 503
                assert response.json()["error"] == "ReplicaUnavailable"
                assert "retry-after" in response.headers
        asyncio.run(main())

    def test_stats_and_metrics_surface_fleet_counters(self):
        async def main():
            _launcher, _supervisor, router = start_fleet(2)
            async with running_gateway(router) as gateway:
                payload = table_dict = {
                    "table_id": "t0",
                    "columns": [{"name": "c0", "cells": ["x"]}],
                }
                await post_annotate(gateway, payload)
                await post_annotate(gateway, table_dict)  # cache hit
                stats = (await get(gateway, "/stats")).json()
                service = stats["service"]
                assert service["results_cache_hits"] == 1
                assert service["fleet_up"] == 2
                text = (await get(gateway, "/metrics")).body.decode()
                assert "kglink_service_results_cache_hits 1" in text
                assert "kglink_service_fleet_up 2" in text
        asyncio.run(main())
