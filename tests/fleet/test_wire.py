"""Wire protocol: frames, deadlines, typed error transport, the client pool."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.errors import (
    DeadlineExceeded,
    ReplicaUnavailable,
    ServingError,
    WorkerCrashed,
)
from repro.fleet.wire import (
    MAX_FRAME_BYTES,
    ReplicaClient,
    WireClosed,
    decode_error,
    encode_error,
    ping,
    recv_message,
    send_message,
    wait_readable,
)
from repro.serve.replica import ReplicaServer

from tests.fleet.util import FakeService, make_tables


@pytest.fixture()
def sock_pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


def far() -> float:
    return time.monotonic() + 30.0


class TestFrames:
    def test_roundtrip_preserves_python_objects(self, sock_pair):
        left, right = sock_pair
        message = {"op": "annotate_batch", "tables": make_tables(3),
                   "budget_s": 1.5}
        send_message(left, message, deadline_s=far())
        assert recv_message(right, deadline_s=far()) == message

    def test_consecutive_frames_stay_in_sync(self, sock_pair):
        left, right = sock_pair
        for index in range(5):
            send_message(left, {"seq": index}, deadline_s=far())
        for index in range(5):
            assert recv_message(right, deadline_s=far()) == {"seq": index}

    def test_expired_deadline_raises_before_any_io(self, sock_pair):
        left, _right = sock_pair
        with pytest.raises(DeadlineExceeded):
            send_message(left, {"op": "ping"},
                         deadline_s=time.monotonic() - 1.0)

    def test_recv_times_out_as_deadline_exceeded(self, sock_pair):
        _left, right = sock_pair
        with pytest.raises(DeadlineExceeded):
            recv_message(right, deadline_s=time.monotonic() + 0.05)

    def test_clean_eof_is_wire_closed(self, sock_pair):
        left, right = sock_pair
        left.close()
        with pytest.raises(WireClosed):
            recv_message(right, deadline_s=far())

    def test_mid_frame_eof_is_connection_error(self, sock_pair):
        left, right = sock_pair
        left.sendall(b"\x00\x00\x00\xff" + b"xx")  # announce 255, send 2
        left.close()
        with pytest.raises(ConnectionError) as excinfo:
            recv_message(right, deadline_s=far())
        assert not isinstance(excinfo.value, WireClosed)

    def test_oversized_header_is_rejected_not_allocated(self, sock_pair):
        left, right = sock_pair
        left.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(ConnectionError, match="corrupt"):
            recv_message(right, deadline_s=far())

    def test_wait_readable_polls_without_consuming(self, sock_pair):
        left, right = sock_pair
        assert wait_readable(right, 0.01) is False
        send_message(left, {"op": "ping"}, deadline_s=far())
        assert wait_readable(right, 1.0) is True
        # The peek consumed nothing: the full frame still parses.
        assert recv_message(right, deadline_s=far()) == {"op": "ping"}


class TestErrorTransport:
    def test_taxonomy_errors_cross_by_name(self):
        error = decode_error(encode_error(DeadlineExceeded("too slow")))
        assert isinstance(error, DeadlineExceeded)
        assert str(error) == "too slow"

    def test_documented_builtins_cross_by_name(self):
        assert isinstance(decode_error(encode_error(ValueError("bad"))),
                          ValueError)
        assert isinstance(decode_error(encode_error(KeyError("k"))), KeyError)

    def test_unknown_types_decode_to_base_serving_error(self):
        class Exotic(RuntimeError):
            pass

        decoded = decode_error(encode_error(Exotic("zap")))
        assert type(decoded) is ServingError
        assert "Exotic" in str(decoded)

    def test_worker_crashed_round_trips(self):
        decoded = decode_error(encode_error(WorkerCrashed("died")))
        assert isinstance(decoded, WorkerCrashed)


@pytest.fixture()
def running_replica():
    service = FakeService("wire-replica")
    server = ReplicaServer(service, name="wire-replica", poll_interval_s=0.05)
    server.serve_in_thread()
    yield server, service
    server.stop(drain_timeout_s=5.0)


class TestReplicaClient:
    def test_annotate_batch_round_trip(self, running_replica):
        server, _service = running_replica
        client = ReplicaClient(("127.0.0.1", server.port))
        try:
            value = client.request(
                "annotate_batch", {"tables": make_tables(2), "budget_s": 5.0}
            )
            assert value == [["label:t0"], ["label:t1"]]
        finally:
            client.close()

    def test_budget_reaches_the_service(self, running_replica):
        server, service = running_replica
        client = ReplicaClient(("127.0.0.1", server.port))
        try:
            client.request("annotate_batch",
                           {"tables": make_tables(1), "budget_s": 2.5})
        finally:
            client.close()
        assert service.calls == [(1, 2.5)]

    def test_connections_are_pooled_and_reused(self, running_replica):
        server, _service = running_replica
        client = ReplicaClient(("127.0.0.1", server.port))
        try:
            for _ in range(4):
                client.request("ping")
            assert len(client._idle) == 1  # same connection, checked back in
        finally:
            client.close()

    def test_replica_side_error_raises_typed(self, running_replica):
        server, _service = running_replica
        client = ReplicaClient(("127.0.0.1", server.port))
        try:
            with pytest.raises(ValueError, match="unknown op"):
                client.request("no_such_op")
        finally:
            client.close()

    def test_unreachable_address_is_replica_unavailable(self):
        client = ReplicaClient(("127.0.0.1", 1), connect_timeout_s=0.2)
        try:
            with pytest.raises(ReplicaUnavailable):
                client.request("ping")
        finally:
            client.close()

    def test_closed_client_refuses_requests(self, running_replica):
        server, _service = running_replica
        client = ReplicaClient(("127.0.0.1", server.port))
        client.close()
        with pytest.raises(ReplicaUnavailable, match="closed"):
            client.request("ping")

    def test_concurrent_requests_each_get_a_connection(self, running_replica):
        server, service = running_replica
        hold = threading.Event()

        def slow(tables, budget_s):
            hold.wait(5.0)
            return [["ok"] for _ in tables]

        service._annotate = slow
        client = ReplicaClient(("127.0.0.1", server.port))
        results: list = []

        def call():
            results.append(client.request(
                "annotate_batch", {"tables": make_tables(1)}
            ))

        threads = [threading.Thread(target=call) for _ in range(3)]
        try:
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 5.0
            while server.requests < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            hold.set()
            for thread in threads:
                thread.join(timeout=5.0)
            assert results == [[["ok"]]] * 3
        finally:
            hold.set()
            client.close()


class TestPing:
    def test_ping_reports_name_and_health(self, running_replica):
        server, _service = running_replica
        payload = ping(("127.0.0.1", server.port),
                       deadline_s=time.monotonic() + 5.0)
        assert payload["name"] == "wire-replica"
        assert payload["health"]["status"] == "healthy"

    def test_ping_dead_address_is_replica_unavailable(self):
        with pytest.raises(ReplicaUnavailable):
            ping(("127.0.0.1", 1), deadline_s=time.monotonic() + 0.5)

    def test_ping_respects_expired_deadline(self, running_replica):
        server, _service = running_replica
        with pytest.raises(DeadlineExceeded):
            ping(("127.0.0.1", server.port),
                 deadline_s=time.monotonic() - 1.0)


class TestShutdownOp:
    def test_shutdown_op_stops_the_server(self):
        service = FakeService()
        server = ReplicaServer(service, poll_interval_s=0.05)
        server.serve_in_thread()
        client = ReplicaClient(("127.0.0.1", server.port))
        try:
            assert client.request("shutdown") == {"stopping": True}
        finally:
            client.close()
        server.stop(drain_timeout_s=5.0)
        with pytest.raises(ReplicaUnavailable):
            ReplicaClient(("127.0.0.1", server.port),
                          connect_timeout_s=0.2).request("ping")
