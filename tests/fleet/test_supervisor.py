"""Supervisor: spawn accounting, heartbeats, respawn with bounded retries."""

from __future__ import annotations

import time

import pytest

from repro.core.errors import WorkerCrashed
from repro.runtime.resilience import RuntimePolicy
from repro.fleet.supervisor import ReplicaSupervisor, ThreadLauncher
from repro.fleet.wire import ping

from tests.fleet.util import FakeService

FAST_POLICY = RuntimePolicy(backoff_base_s=0.001, backoff_max_s=0.01)


def make_supervisor(replicas=2, *, launcher=None, **kwargs):
    launcher = launcher or ThreadLauncher(lambda name: FakeService(name))
    kwargs.setdefault("policy", FAST_POLICY)
    kwargs.setdefault("heartbeat_interval_s", 60.0)  # tests drive check_now()
    return launcher, ReplicaSupervisor(launcher, replicas, **kwargs)


class TestStartStop:
    def test_start_spawns_every_replica(self):
        _launcher, supervisor = make_supervisor(3)
        with supervisor:
            members = supervisor.members()
            assert len(members) == 3
            assert {m.name for m in members} == {
                "replica-0", "replica-1", "replica-2"}
            assert all(m.state == "up" for m in members)
            assert all(m.address is not None for m in members)
            assert supervisor.stats()["spawned"] == 3

    def test_replicas_answer_pings_on_their_addresses(self):
        _launcher, supervisor = make_supervisor(2)
        with supervisor:
            for member in supervisor.members():
                payload = ping(member.address,
                               deadline_s=time.monotonic() + 5.0)
                assert payload["health"]["status"] == "healthy"

    def test_stop_terminates_and_marks_stopped(self):
        launcher, supervisor = make_supervisor(2)
        supervisor.start()
        supervisor.stop()
        assert supervisor.members() == []
        assert all(m.state == "stopped" for m in supervisor.describe())
        assert all(handle.service.closed for handle in launcher.launched)

    def test_stop_is_idempotent(self):
        _launcher, supervisor = make_supervisor(1)
        supervisor.start()
        supervisor.stop()
        supervisor.stop()
        assert supervisor.stats()["up"] == 0


class TestHeartbeat:
    def test_sweep_counts_heartbeats_and_caches_health(self):
        _launcher, supervisor = make_supervisor(2)
        with supervisor:
            supervisor.check_now()
            stats = supervisor.stats()
            assert stats["heartbeats"] == 2
            assert stats["heartbeat_failures"] == 0
            for member in supervisor.members():
                assert member.last_health["status"] == "healthy"

    def test_dead_replica_is_respawned_on_sweep(self):
        launcher, supervisor = make_supervisor(2)
        with supervisor:
            victim = launcher.launched[0]
            old_address = victim.address()
            victim.crash()
            supervisor.check_now()
            members = supervisor.members()
            assert len(members) == 2
            assert all(m.state == "up" for m in members)
            replacement = next(m for m in members if m.name == "replica-0")
            assert replacement.restarts == 1
            assert replacement.generation == 2
            assert replacement.address != old_address
            # The replacement actually serves.
            ping(replacement.address, deadline_s=time.monotonic() + 5.0)

    def test_spawn_accounting_balances_after_respawns(self):
        launcher, supervisor = make_supervisor(2)
        with supervisor:
            launcher.launched[0].crash()
            supervisor.check_now()
            launcher.launched[-1].crash()  # kill the replacement too
            supervisor.check_now()
            stats = supervisor.stats()
            assert stats["spawned"] == stats["replicas"] + stats["restarts"]
            assert stats["restarts"] == 2
            assert stats["heartbeat_failures"] == 2
            assert stats["up"] == 2

    def test_repeat_sweep_without_crash_does_not_respawn(self):
        launcher, supervisor = make_supervisor(2)
        with supervisor:
            launcher.launched[0].crash()
            supervisor.check_now()
            spawned = supervisor.stats()["spawned"]
            supervisor.check_now()
            supervisor.check_now()
            assert supervisor.stats()["spawned"] == spawned

    def test_background_monitor_respawns_without_explicit_sweep(self):
        launcher, supervisor = make_supervisor(
            1, heartbeat_interval_s=0.05, heartbeat_timeout_s=2.0)
        with supervisor:
            launcher.launched[0].crash()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                stats = supervisor.stats()
                if stats["restarts"] >= 1 and stats["up"] == 1:
                    break
                time.sleep(0.02)
            stats = supervisor.stats()
            assert stats["restarts"] == 1
            assert stats["up"] == 1
            assert stats["spawned"] == stats["replicas"] + stats["restarts"]


class TestGiveUp:
    def test_slot_fails_after_max_restarts(self):
        launcher, supervisor = make_supervisor(1, max_restarts=2)
        with supervisor:
            for _ in range(3):
                launcher.launched[-1].crash()
                supervisor.check_now()
            describe = {m.name: m for m in supervisor.describe()}
            assert describe["replica-0"].state == "failed"
            assert supervisor.members() == []
            stats = supervisor.stats()
            assert stats["failed"] == 1
            assert stats["gave_up"] == 1
            assert stats["restarts"] == 2  # third death exceeded the budget
            reasons = supervisor.failure_reasons()
            assert "replica-0" in reasons
            assert "gave up" in reasons["replica-0"]

    def test_failed_slot_stays_failed_on_later_sweeps(self):
        launcher, supervisor = make_supervisor(1, max_restarts=0)
        with supervisor:
            launcher.launched[0].crash()
            supervisor.check_now()
            supervisor.check_now()
            describe = supervisor.describe()
            assert describe[0].state == "failed"
            assert supervisor.stats()["gave_up"] == 1


class FailingLauncher(ThreadLauncher):
    """Launches normally, then refuses every relaunch."""

    def __init__(self, factory):
        super().__init__(factory)
        self.fail_from = None

    def launch(self, name):
        if self.fail_from is not None and len(self.launched) >= self.fail_from:
            raise WorkerCrashed(f"launch refused for {name}")
        return super().launch(name)


class TestLaunchFailure:
    def test_failed_relaunch_leaves_slot_down_for_retry(self):
        launcher = FailingLauncher(lambda name: FakeService(name))
        _, supervisor = make_supervisor(1, launcher=launcher, max_restarts=5)
        with supervisor:
            launcher.fail_from = 1  # every relaunch now fails
            launcher.launched[0].crash()
            supervisor.check_now()
            describe = supervisor.describe()
            assert describe[0].state == "down"
            assert supervisor.members() == []
            # Relaunch succeeds once the launcher recovers.
            launcher.fail_from = None
            supervisor.check_now()
            members = supervisor.members()
            assert len(members) == 1
            assert members[0].state == "up"


class TestDescribe:
    def test_describe_reports_every_slot(self):
        _launcher, supervisor = make_supervisor(2)
        with supervisor:
            described = supervisor.describe()
            assert [m.name for m in described] == ["replica-0", "replica-1"]
            assert all(m.generation == 1 for m in described)

    def test_member_dataclass_is_a_snapshot(self):
        launcher, supervisor = make_supervisor(1)
        with supervisor:
            before = supervisor.members()[0]
            launcher.launched[0].crash()
            supervisor.check_now()
            assert before.restarts == 0  # frozen snapshot, not a live view
            assert supervisor.members()[0].restarts == 1

    def test_stats_keys_are_stable(self):
        _launcher, supervisor = make_supervisor(1)
        with supervisor:
            assert set(supervisor.stats()) == {
                "replicas", "up", "failed", "spawned", "restarts",
                "heartbeats", "heartbeat_failures", "gave_up",
            }


def test_context_manager_stops_on_exit():
    _launcher, supervisor = make_supervisor(1)
    with supervisor as entered:
        assert entered is supervisor
        assert supervisor.stats()["up"] == 1
    assert supervisor.stats()["up"] == 0


def test_crashed_handle_fails_pytest_cleanly_when_unstarted():
    # start() raising (e.g. port exhaustion) must not leave threads behind;
    # a supervisor that never started stops as a no-op.
    _launcher, supervisor = make_supervisor(1)
    supervisor.stop()
    assert supervisor.stats()["up"] == 0
