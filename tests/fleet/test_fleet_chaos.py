"""Fleet chaos: replicas die mid-batch, answers stay bitwise-identical.

The invariant mirrors the gateway chaos suite, one layer out: **every
request the gateway accepts is answered** — and because replicas are
deterministic over the same bundle, every 200 carries predictions
bitwise-identical to a single-process service, no matter which replica
died underneath it.  Worker death comes two ways: scripted wire faults
(:class:`~repro.runtime.FaultPlan` on a
:class:`~repro.runtime.FaultyEndpoint`, deterministic) and genuine
mid-batch socket slams (``crash()`` on a thread replica), which also
exercises the supervisor's respawn accounting.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.fleet import FleetRouter, ReplicaSupervisor, ThreadLauncher
from repro.fleet.wire import ReplicaClient
from repro.runtime import FaultPlan, FaultyEndpoint, RuntimePolicy
from repro.serve import AnnotationService

from tests.gateway.util import post_annotate, running_gateway, table_payload

pytestmark = pytest.mark.chaos

CHAOS_POLICY = RuntimePolicy(timeout_s=30.0, max_retries=1,
                             breaker_threshold=3, breaker_reset_s=60.0,
                             backoff_base_s=0.01, backoff_max_s=0.05)


def real_fleet(bundle_dir, replicas=2, *, service_factory=None,
               heartbeat_interval_s=60.0, **router_kwargs):
    """A fleet of real trained services on thread replicas + real sockets."""
    factory = service_factory or (
        lambda name: AnnotationService.load(bundle_dir, policy=CHAOS_POLICY))
    launcher = ThreadLauncher(factory)
    supervisor = ReplicaSupervisor(
        launcher, replicas, policy=CHAOS_POLICY,
        heartbeat_interval_s=heartbeat_interval_s, heartbeat_timeout_s=5.0,
    )
    supervisor.start()
    router = FleetRouter(supervisor, own_supervisor=True, **router_kwargs)
    return launcher, supervisor, router


def _accounted(stats: dict) -> bool:
    answered = (stats["completed"] + stats["errors"]
                + stats["rejected_draining"] + stats["expired_at_admission"]
                + stats["expired_in_flight"])
    return stats["requests"] == answered


def wait_for_respawn(supervisor, restarts, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        stats = supervisor.stats()
        if stats["restarts"] >= restarts and stats["up"] == stats["replicas"]:
            return stats
        time.sleep(0.02)
    raise AssertionError(f"fleet did not respawn: {supervisor.stats()}")


class _CrashUnderFirstBatch:
    """Slams the replica's own socket while its first batch is in flight.

    The service still computes the answer, but the send fails — exactly
    what the router sees when a worker dies mid-batch.
    """

    def __init__(self, service):
        self._service = service
        self.handle = None  # armed by the test once the handle exists
        self._fired = False
        self._fire_lock = threading.Lock()

    def annotate_batch(self, tables, budget_s=None):
        fire = False
        with self._fire_lock:
            if not self._fired and self.handle is not None:
                self._fired = True
                fire = True
        if fire:
            self.handle.crash()
        return self._service.annotate_batch(tables, budget_s=budget_s)

    def __getattr__(self, name):
        return getattr(self._service, name)


class TestReplicaDeathMidBatch:
    def test_killed_replica_answers_everything_and_respawns(
            self, fleet_bundle, serve_tables, expected):
        proxies = []

        def factory(name):
            service = AnnotationService.load(fleet_bundle,
                                             policy=CHAOS_POLICY)
            if name == "replica-0" and not proxies:
                proxy = _CrashUnderFirstBatch(service)
                proxies.append(proxy)
                return proxy
            return service

        launcher, supervisor, router = real_fleet(
            fleet_bundle, 2, service_factory=factory,
            heartbeat_interval_s=0.05)
        try:
            proxies[0].handle = launcher.launched[0]  # arm the crash

            async def wave():
                async with running_gateway(router, max_wait_ms=50.0,
                                           max_batch=8) as gateway:
                    responses = await asyncio.wait_for(asyncio.gather(*[
                        post_annotate(gateway, table_payload(table))
                        for table in serve_tables
                    ]), 120.0)
                    return ([r.status for r in responses],
                            [r.json().get("predictions") for r in responses],
                            gateway.stats())

            # Wave 1: replica-0 dies under the very first batch.  The
            # router fails the batch over; the gateway never notices.
            statuses, predictions, stats = asyncio.run(wave())
            assert statuses == [200] * len(serve_tables)  # answered_rate 1.0
            assert predictions == expected  # bitwise, despite the death
            assert _accounted(stats)
            assert stats["completed"] == len(serve_tables)
            assert router.stats().failovers >= 1

            # The supervisor noticed and respawned; accounting balances.
            fleet_stats = wait_for_respawn(supervisor, restarts=1)
            assert (fleet_stats["spawned"]
                    == fleet_stats["replicas"] + fleet_stats["restarts"])
            assert fleet_stats["heartbeat_failures"] >= 1

            # Wave 2 over the healed fleet: same answers again.
            statuses, predictions, stats = asyncio.run(wave())
            assert statuses == [200] * len(serve_tables)
            assert predictions == expected
            assert _accounted(stats)
        finally:
            router.close()
        assert supervisor.stats()["up"] == 0


class TestScriptedWireFaults:
    def test_wire_resets_fail_over_without_changing_answers(
            self, fleet_bundle, serve_tables, expected):
        # Deterministic wire chaos: replica-0's first two annotate calls
        # die with a connection reset before any bytes move.
        plan = FaultPlan().fail(
            ConnectionResetError("injected wire reset"), times=2,
            match=lambda task: task == ("replica-0", "annotate_batch"),
        )

        def endpoint_factory(name, address):
            client = ReplicaClient(address, name=name,
                                   default_timeout_s=30.0)
            return FaultyEndpoint(client, plan, name=name)

        _launcher, _supervisor, router = real_fleet(
            fleet_bundle, 2, endpoint_factory=endpoint_factory)
        with router:
            results = [router.annotate_batch([table])[0]
                       for table in serve_tables[:3]]
            assert results == expected[:3]  # bitwise across the failovers
            stats = router.stats()
            assert stats.failovers == 2
            assert stats.replica_errors == 2
            assert stats.rejected == 0
            assert len(plan.fired) == 2  # the script ran exactly as written
            # Two failures stay under the breaker threshold (3): replica-0
            # was never ejected, and the fleet still reports healthy.
            assert router.health().status == "healthy"


class TestRepeatedDeaths:
    def test_restart_accounting_balances_across_serial_kills(
            self, fleet_bundle, serve_tables, expected):
        launcher, supervisor, router = real_fleet(
            fleet_bundle, 2, heartbeat_interval_s=0.05)
        try:
            for round_number in range(1, 4):
                launcher.launched[-1].crash()  # kill the newest replica
                stats = wait_for_respawn(supervisor, restarts=round_number)
                assert (stats["spawned"]
                        == stats["replicas"] + stats["restarts"])
            assert supervisor.stats()["restarts"] == 3
            assert supervisor.stats()["gave_up"] == 0
            # The churned fleet still serves bitwise-correct answers.
            assert router.annotate_batch(serve_tables[:2]) == expected[:2]
            assert router.health().status == "healthy"
        finally:
            router.close()
