"""Shared results cache: content keys, single-flight protocol, LRU bounds."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.errors import DeadlineExceeded, ReplicaUnavailable
from repro.data.table import Column, Table
from repro.fleet.cache import Flight, SharedResultsCache, table_key


def dict_table(table_id="t0", name="c0", cells=("a", "b")) -> dict:
    return {"table_id": table_id,
            "columns": [{"name": name, "cells": list(cells)}]}


def obj_table(table_id="t0", name="c0", cells=("a", "b")) -> Table:
    return Table(table_id=table_id,
                 columns=[Column(name=name, cells=list(cells))])


class TestTableKey:
    def test_same_content_same_key(self):
        assert table_key(dict_table()) == table_key(dict_table())

    def test_object_and_dict_shapes_agree(self):
        # The gateway parses payloads into Table objects before the router
        # sees them; a raw dict with the same content must map to the same
        # cache entry.
        assert table_key(obj_table()) == table_key(dict_table())

    def test_table_id_is_part_of_identity(self):
        assert table_key(dict_table("t0")) != table_key(dict_table("t1"))

    def test_column_name_is_part_of_identity(self):
        assert table_key(dict_table(name="c0")) != table_key(
            dict_table(name="c1"))

    def test_cells_are_part_of_identity(self):
        assert table_key(dict_table(cells=("a",))) != table_key(
            dict_table(cells=("a", "b")))

    def test_cell_order_matters(self):
        assert table_key(dict_table(cells=("a", "b"))) != table_key(
            dict_table(cells=("b", "a")))

    def test_cell_boundaries_do_not_alias(self):
        assert table_key(dict_table(cells=("ab", "c"))) != table_key(
            dict_table(cells=("a", "bc")))

    def test_legacy_header_field_is_honoured(self):
        legacy = {"table_id": "t0",
                  "columns": [{"header": "c0", "cells": ["a", "b"]}]}
        assert table_key(legacy) == table_key(dict_table())

    def test_unknown_shapes_fall_back_to_repr(self):
        assert table_key("weird") == table_key("weird")
        assert table_key("weird") != table_key("weirder")


class TestSingleFlight:
    def test_lead_then_hit(self):
        cache = SharedResultsCache()
        key = table_key(dict_table())
        outcome, flight = cache.begin(key)
        assert outcome == "lead"
        cache.complete(key, flight, [["x"]])
        assert cache.begin(key) == ("hit", [["x"]])

    def test_concurrent_miss_joins_the_lead(self):
        cache = SharedResultsCache()
        key = "k"
        outcome, flight = cache.begin(key)
        assert outcome == "lead"
        joined, same_flight = cache.begin(key)
        assert joined == "join"
        assert same_flight is flight

    def test_joiner_receives_published_value_across_threads(self):
        cache = SharedResultsCache()
        key = "k"
        _, flight = cache.begin(key)
        _, joined = cache.begin(key)
        got: list = []

        def wait():
            got.append(joined.wait(deadline_s=time.monotonic() + 5.0))

        thread = threading.Thread(target=wait)
        thread.start()
        cache.complete(key, flight, [["published"]])
        thread.join(timeout=5.0)
        assert got == [[["published"]]]

    def test_joiner_deadline_is_its_own(self):
        cache = SharedResultsCache()
        _, flight = cache.begin("k")
        _, joined = cache.begin("k")
        start = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            joined.wait(deadline_s=start + 0.05)
        assert time.monotonic() - start < 2.0
        cache.fail("k", flight, ReplicaUnavailable("cleanup"))

    def test_failed_lead_propagates_then_next_begin_leads_fresh(self):
        cache = SharedResultsCache()
        key = "k"
        _, flight = cache.begin(key)
        _, joined = cache.begin(key)
        cache.fail(key, flight, ReplicaUnavailable("replica died"))
        with pytest.raises(ReplicaUnavailable, match="replica died"):
            joined.wait(deadline_s=time.monotonic() + 1.0)
        # The key is not wedged: a new request starts a fresh lead.
        outcome, fresh = cache.begin(key)
        assert outcome == "lead"
        assert fresh is not flight
        cache.complete(key, fresh, [["recovered"]])
        assert cache.begin(key) == ("hit", [["recovered"]])

    def test_flight_wait_after_publish_returns_immediately(self):
        flight = Flight()
        flight.publish("v")
        assert flight.wait(deadline_s=time.monotonic() - 1.0) == "v"


class TestBounds:
    def test_lru_evicts_oldest_at_capacity(self):
        cache = SharedResultsCache(maxsize=2)
        for index in range(3):
            key = f"k{index}"
            _, flight = cache.begin(key)
            cache.complete(key, flight, index)
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["size"] == 2
        outcome, _ = cache.begin("k0")  # oldest, evicted
        assert outcome == "lead"
        assert cache.begin("k2")[0] == "hit"

    def test_zero_maxsize_disables_storage_keeps_coalescing(self):
        cache = SharedResultsCache(maxsize=0)
        _, flight = cache.begin("k")
        assert cache.begin("k")[0] == "join"  # coalescing still works
        cache.complete("k", flight, "v")
        assert cache.begin("k")[0] == "lead"  # nothing was stored


class TestStats:
    def test_counters_track_the_protocol(self):
        cache = SharedResultsCache(maxsize=8)
        _, flight = cache.begin("k")
        cache.begin("k")
        cache.complete("k", flight, "v")
        cache.begin("k")
        stats = cache.stats()
        assert stats == {"hits": 1, "misses": 1, "coalesced": 1,
                         "evictions": 0, "size": 1, "maxsize": 8}

    def test_clear_resets_storage_and_flights(self):
        cache = SharedResultsCache()
        _, flight = cache.begin("k")
        cache.complete("k", flight, "v")
        cache.begin("wedged")  # leave a flight open
        cache.clear()
        assert cache.begin("k")[0] == "lead"
        assert cache.begin("wedged")[0] == "lead"  # old flight was dropped
