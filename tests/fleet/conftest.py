"""Package fixtures for the fleet suite: one tiny trained bundle, shared.

The unit tests (wire, cache, supervisor, router) run against fakes; the
smoke and chaos suites put *real* trained services behind the fleet so the
bitwise-identical-predictions invariant is checked against the production
annotation path.  Training happens once per test run, package-scoped.
"""

from __future__ import annotations

import pytest

from repro.core.annotator import KGLinkAnnotator, KGLinkConfig
from repro.data.corpus import TableCorpus
from repro.serve import AnnotationService, ServiceBundle

TINY_CONFIG = KGLinkConfig(
    epochs=1, batch_size=4, learning_rate=1e-3, pretrain_steps=2,
    hidden_size=32, num_layers=1, num_heads=2, intermediate_size=48,
    top_k_rows=5, max_tokens_per_column=12, vocab_size=900,
    max_position_embeddings=140, max_feature_tokens=8,
)


@pytest.fixture(scope="package")
def fleet_bundle(graph, linker, semtab_splits, tmp_path_factory):
    train = TableCorpus("train", semtab_splits.train.tables[:8],
                        semtab_splits.train.label_vocabulary)
    annotator = KGLinkAnnotator(graph, TINY_CONFIG, linker=linker)
    annotator.fit(train)
    return ServiceBundle.from_annotator(annotator).save(
        tmp_path_factory.mktemp("fleet-bundles") / "svc"
    )


@pytest.fixture(scope="package")
def serve_tables(semtab_splits):
    return semtab_splits.test.tables[:6]


@pytest.fixture(scope="package")
def expected(fleet_bundle, serve_tables):
    """Fault-free single-process annotations: the fleet must match bitwise."""
    service = AnnotationService.load(fleet_bundle)
    try:
        return service.annotate_batch(serve_tables)
    finally:
        service.close()
