"""Fleet smoke: real worker processes, real bundle, real HTTP, clean drain.

This is the CI fleet-smoke path: two :class:`ProcessLauncher` replicas each
loading the trained bundle in their own process, the gateway in front, 50
requests over actual loopback sockets end to end.  Every request must come
back 200 with predictions bitwise-identical to a single-process service,
and the drain must leave no replica running.
"""

from __future__ import annotations

import asyncio

from repro.fleet import FleetRouter, ProcessLauncher, ReplicaSupervisor

from tests.gateway.util import post_annotate, running_gateway, table_payload

REQUESTS = 50


def _accounted(stats: dict) -> bool:
    answered = (stats["completed"] + stats["errors"]
                + stats["rejected_draining"] + stats["expired_at_admission"]
                + stats["expired_in_flight"])
    return stats["requests"] == answered


def test_fifty_requests_through_two_process_replicas(fleet_bundle,
                                                     serve_tables, expected):
    launcher = ProcessLauncher(fleet_bundle)
    supervisor = ReplicaSupervisor(launcher, 2, heartbeat_interval_s=60.0)
    supervisor.start()
    router = FleetRouter(supervisor, own_supervisor=True)
    try:
        assert len(supervisor.members()) == 2

        async def main():
            async with running_gateway(router, max_wait_ms=10.0,
                                       max_batch=8) as gateway:
                responses = await asyncio.wait_for(asyncio.gather(*[
                    post_annotate(gateway, table_payload(
                        serve_tables[index % len(serve_tables)]))
                    for index in range(REQUESTS)
                ]), 180.0)
                return ([r.status for r in responses],
                        [r.json().get("predictions") for r in responses],
                        gateway.stats())

        statuses, predictions, stats = asyncio.run(main())
        assert statuses == [200] * REQUESTS
        assert predictions == [expected[index % len(serve_tables)]
                               for index in range(REQUESTS)]
        assert _accounted(stats)
        assert stats["completed"] == REQUESTS
        fleet = router.stats()
        assert fleet.dispatches >= 1
        # 50 requests cycle 6 distinct tables: the shared cache absorbed
        # the repeats instead of re-annotating them.
        assert fleet.results_cache["misses"] == len(serve_tables)
        assert fleet.results_cache["hits"] >= 1
        assert fleet.rejected == 0
    finally:
        router.close()
    # Clean drain: both worker processes terminated and accounted for.
    stats = supervisor.stats()
    assert stats["up"] == 0
    assert all(member.state == "stopped" for member in supervisor.describe())
