"""Shared helpers for the fleet suite: scripted services, in-process fleets.

The fleet's moving parts (wire protocol, supervisor, router) only need the
narrow serving surface — ``annotate_batch`` / ``stats`` / ``health`` /
``close`` — so most tests run against :class:`FakeService` over *real*
loopback sockets via :class:`~repro.fleet.supervisor.ThreadLauncher`, and
reserve real trained services for the chaos and smoke suites.
"""

from __future__ import annotations

import threading

from repro.fleet import FleetRouter, ReplicaSupervisor, SharedResultsCache, ThreadLauncher


class FakeStats:
    def to_dict(self) -> dict:
        return {"requests": 0, "tables": 0}


class FakeHealth:
    def __init__(self, status: str = "healthy"):
        self.status = status

    def to_dict(self) -> dict:
        return {"status": self.status, "reasons": [], "breakers": {}}


class FakeService:
    """Deterministic per-table predictions, with call recording.

    ``annotate`` overrides the batch behaviour (takes ``(tables,
    budget_s)``); raise from it to exercise error transport, block on an
    event to hold a batch in flight.
    """

    def __init__(self, name: str = "svc", annotate=None,
                 health_status: str = "healthy"):
        self.name = name
        self.calls: list[tuple[int, float | None]] = []
        self.closed = False
        self._annotate = annotate
        self._health_status = health_status
        self._lock = threading.Lock()

    def annotate_batch(self, tables, budget_s=None):
        with self._lock:
            self.calls.append((len(tables), budget_s))
        if self._annotate is not None:
            return self._annotate(tables, budget_s)
        return [[f"label:{_table_id(table)}"] for table in tables]

    def stats(self) -> FakeStats:
        return FakeStats()

    def health(self) -> FakeHealth:
        return FakeHealth(self._health_status)

    def close(self) -> None:
        self.closed = True


def _table_id(table) -> str:
    if isinstance(table, dict):
        return str(table.get("table_id", "?"))
    return str(getattr(table, "table_id", "?"))


def make_tables(count: int, prefix: str = "t") -> list[dict]:
    return [
        {"table_id": f"{prefix}{index}",
         "columns": [{"name": "c0", "cells": [f"cell-{index}"]}]}
        for index in range(count)
    ]


def start_fleet(replicas: int = 2, *, service_factory=None,
                cache: SharedResultsCache | None = None,
                heartbeat_interval_s: float = 60.0,
                **router_kwargs):
    """A running ThreadLauncher fleet plus its router.

    The default heartbeat interval is long so the background monitor stays
    out of the way — tests drive sweeps deterministically via
    ``supervisor.check_now()``.  Returns ``(launcher, supervisor, router)``;
    closing the router stops the supervisor (``own_supervisor=True``).
    """
    factory = service_factory or (lambda name: FakeService(name))
    launcher = ThreadLauncher(factory)
    supervisor = ReplicaSupervisor(
        launcher, replicas,
        heartbeat_interval_s=heartbeat_interval_s,
        heartbeat_timeout_s=5.0,
    )
    supervisor.start()
    router = FleetRouter(supervisor, cache=cache, own_supervisor=True,
                         **router_kwargs)
    return launcher, supervisor, router
