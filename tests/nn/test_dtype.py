"""Tests of the dtype policy, its float64 escape hatch and cross-policy I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import LayerNorm, Linear
from repro.nn.optim import SGD, AdamW
from repro.nn.serialization import (
    checkpoint_metadata,
    load_state_dict,
    save_state_dict,
)
from repro.nn.tensor import (
    FLOAT32_POLICY,
    FLOAT64_POLICY,
    DtypePolicy,
    Tensor,
    accumulation_dtype,
    dtype_policy,
    get_default_dtype,
    get_dtype_policy,
    no_grad,
    set_default_dtype,
    set_dtype_policy,
)


@pytest.fixture()
def float64_default():
    with dtype_policy(FLOAT64_POLICY):
        yield


class TestDtypePolicy:
    def test_default_policy_is_float32_compute_float64_accumulate(self):
        policy = get_dtype_policy()
        assert policy.compute == np.dtype(np.float32)
        assert policy.accumulate == np.dtype(np.float64)
        assert get_default_dtype() == np.dtype(np.float32)
        assert Tensor([1.0, 2.0]).dtype == np.float32

    def test_policy_is_immutable_and_comparable(self):
        policy = DtypePolicy(np.float32, np.float64)
        assert policy == FLOAT32_POLICY
        assert policy != FLOAT64_POLICY
        with pytest.raises(AttributeError):
            policy.compute = np.dtype(np.float64)

    def test_rejects_bad_dtypes(self):
        with pytest.raises(ValueError):
            DtypePolicy(np.int64, np.float64)
        with pytest.raises(ValueError):
            DtypePolicy(np.float32, np.float16)
        # accumulate must not be narrower than compute
        with pytest.raises(ValueError):
            DtypePolicy(np.float64, np.float32)
        with pytest.raises(TypeError):
            set_dtype_policy(np.float32)

    def test_set_returns_previous_policy(self):
        previous = set_dtype_policy(FLOAT64_POLICY)
        try:
            assert previous == FLOAT32_POLICY
            assert get_dtype_policy() == FLOAT64_POLICY
        finally:
            set_dtype_policy(previous)

    def test_context_manager_restores(self):
        assert get_dtype_policy() == FLOAT32_POLICY
        with dtype_policy(FLOAT64_POLICY):
            assert Tensor([1.0]).dtype == np.float64
        assert get_dtype_policy() == FLOAT32_POLICY

    def test_accumulation_dtype_never_narrows(self):
        assert accumulation_dtype(np.float32) == np.dtype(np.float64)
        assert accumulation_dtype(np.float64) == np.dtype(np.float64)


class TestDefaultDtypeShim:
    def test_set_default_dtype_maps_to_policy(self):
        previous = set_default_dtype(np.float64)
        try:
            assert previous == np.dtype(np.float32)
            assert get_dtype_policy() == FLOAT64_POLICY
        finally:
            set_default_dtype(previous)
        assert get_dtype_policy() == FLOAT32_POLICY

    def test_rejects_non_float_dtypes(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int64)
        with pytest.raises(ValueError):
            set_default_dtype(np.float16)

    def test_tensor_creation_uses_policy_compute(self, float64_default):
        assert Tensor([1.0, 2.0]).dtype == np.float64
        assert Tensor(np.zeros(3, dtype=np.float32)).dtype == np.float64
        assert Tensor.zeros(2, 2).dtype == np.float64


class TestComputeDtypeFlowsThrough:
    def test_ops_stay_in_float32(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        w = Tensor(np.ones((3, 3)))
        assert (x + 1.0).dtype == np.float32
        assert (x * 2.0).dtype == np.float32
        assert (x @ w).dtype == np.float32
        assert F.gelu(x).dtype == np.float32
        assert F.softmax(x).dtype == np.float32
        norm = LayerNorm(3)
        assert norm(x).dtype == np.float32

    def test_float64_model_survives_policy_restore(self):
        # A model built under the escape hatch keeps computing in float64
        # after the default policy is restored (outputs inherit input dtype).
        with dtype_policy(FLOAT64_POLICY):
            layer = Linear(4, 2)
            x = Tensor(np.ones((3, 4)))
        out = layer(x)  # forward pass runs after the restore
        assert out.dtype == np.float64
        assert F.gelu(out).dtype == np.float64
        assert (out * 2.0).dtype == np.float64

    def test_backward_works_in_float32(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        loss = (x * 3.0).sum()
        loss.backward()
        assert x.grad is not None
        assert x.grad.dtype == np.float32
        np.testing.assert_allclose(x.grad, 3.0)

    def test_wide_softmax_stays_normalised(self):
        # The denominator is accumulated in float64, so even a very wide
        # softmax row normalises tightly in the float32 compute dtype.
        logits = Tensor(np.zeros((1, 100_000), dtype=np.float32))
        probs = F.softmax(logits).data
        assert probs.dtype == np.float32
        np.testing.assert_allclose(float(probs.sum(dtype=np.float64)), 1.0, atol=1e-6)

    def test_loss_scalars_accumulate_in_float64(self):
        logits = Tensor(np.zeros((4, 8), dtype=np.float32), requires_grad=True)
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert loss.data.dtype == np.float64
        loss.backward()
        assert logits.grad.dtype == np.float32


class TestNoGradFastPath:
    def test_no_graph_recorded_under_no_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with no_grad():
            out = F.gelu((x @ x) + x)
        assert not out.requires_grad
        assert out._backward is None
        assert out._parents == ()

    def test_no_graph_without_grad_inputs(self):
        x = Tensor(np.ones((2, 2)))
        out = (x @ x).relu().sum()
        assert not out.requires_grad
        assert out._backward is None
        assert out._parents == ()

    def test_graph_still_recorded_when_training(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        out = (x @ x).sum()
        assert out.requires_grad
        assert out._backward is not None
        assert out._parents != ()


class TestCheckpointDtype:
    def test_checkpoint_records_policy(self, tmp_path):
        layer = Linear(4, 2)
        path = save_state_dict(layer.state_dict(), tmp_path / "model.npz")
        meta = checkpoint_metadata(path)
        assert meta["compute_dtype"] == "float32"
        assert meta["accumulate_dtype"] == "float64"
        assert meta["format_version"] == 1

    def test_legacy_checkpoint_reports_float64(self, tmp_path):
        # Archives written before the metadata existed: plain arrays only.
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, **{"weight": np.zeros((2, 2))})
        meta = checkpoint_metadata(path)
        assert meta["compute_dtype"] == "float64"
        assert meta["format_version"] == 0
        assert "weight" in load_state_dict(path)

    def test_reserved_prefix_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_state_dict({"__repro_meta__.weight": np.zeros(2)}, tmp_path / "bad.npz")

    def test_round_trip_float64_to_float32_to_float64(self, tmp_path):
        with dtype_policy(FLOAT64_POLICY):
            oracle = Linear(6, 3)
            path64 = save_state_dict(oracle.state_dict(), tmp_path / "f64.npz")
        assert checkpoint_metadata(path64)["compute_dtype"] == "float64"

        # float64 checkpoint -> float32 model (cast on load)
        model32 = Linear(6, 3)
        model32.load_state_dict(load_state_dict(path64))
        assert model32.weight.data.dtype == np.float32
        path32 = save_state_dict(model32.state_dict(), tmp_path / "f32.npz")
        assert checkpoint_metadata(path32)["compute_dtype"] == "float32"

        # float32 checkpoint -> float64 model again
        with dtype_policy(FLOAT64_POLICY):
            model64 = Linear(6, 3)
            model64.load_state_dict(load_state_dict(path32))
        assert model64.weight.data.dtype == np.float64
        # Values survive within float32 resolution (the narrowest hop).
        np.testing.assert_allclose(
            model64.weight.data, oracle.weight.data, rtol=1e-6, atol=1e-7
        )

    def test_load_state_dict_cast_argument(self, tmp_path):
        with dtype_policy(FLOAT64_POLICY):
            path = save_state_dict({"w": np.ones(3)}, tmp_path / "w.npz")
        assert load_state_dict(path)["w"].dtype == np.float64
        assert load_state_dict(path, cast="policy")["w"].dtype == np.float32
        assert load_state_dict(path, cast=np.float64)["w"].dtype == np.float64

    def test_module_to_escape_hatch(self):
        layer = Linear(4, 2)
        assert layer.weight.data.dtype == np.float32
        layer.to(np.float64)
        assert layer.weight.data.dtype == np.float64
        out = layer(Tensor(np.ones((2, 4), dtype=np.float64)))
        assert out.dtype == np.float64

    def test_module_to_rejects_non_float_dtypes(self):
        layer = Linear(4, 2)
        with pytest.raises(ValueError):
            layer.to(np.int64)
        with pytest.raises(ValueError):
            layer.to(np.float16)
        assert layer.weight.data.dtype == np.float32


class TestOptimizerStateDtype:
    def test_adamw_second_moments_in_accumulate_dtype(self):
        layer = Linear(4, 2)
        optimizer = AdamW(layer.parameters(), lr=1e-3)
        assert all(m.dtype == np.float32 for m in optimizer._m)
        assert all(v.dtype == np.float64 for v in optimizer._v)
        out = layer(Tensor(np.ones((2, 4)))).sum()
        out.backward()
        optimizer.step()
        assert all(v.dtype == np.float64 for v in optimizer._v)
        assert layer.weight.data.dtype == np.float32

    def test_adamw_state_round_trip_restores_policy_dtypes(self):
        layer = Linear(4, 2)
        optimizer = AdamW(layer.parameters(), lr=2e-3)
        layer(Tensor(np.ones((2, 4)))).sum().backward()
        optimizer.step()
        state = optimizer.state_dict()
        # Simulate a checkpoint that stored everything in float32.
        downcast = {k: v.astype(np.float32) for k, v in state.items()}

        restored = AdamW(Linear(4, 2).parameters(), lr=1e-3)
        restored.load_state_dict(downcast)
        assert restored._step == 1
        assert restored.lr == pytest.approx(2e-3)
        assert all(m.dtype == np.float32 for m in restored._m)
        # Second moments come back in the accumulate dtype even though the
        # checkpoint stored them as float32.
        assert all(v.dtype == np.float64 for v in restored._v)

    def test_adamw_state_survives_npz(self, tmp_path):
        layer = Linear(3, 3)
        optimizer = AdamW(layer.parameters(), lr=1e-3)
        layer(Tensor(np.ones((1, 3)))).sum().backward()
        optimizer.step()
        path = save_state_dict(optimizer.state_dict(), tmp_path / "opt.npz")
        restored = AdamW(Linear(3, 3).parameters(), lr=1e-3)
        restored.load_state_dict(load_state_dict(path))
        for fresh, saved in zip(restored._v, optimizer._v, strict=True):
            np.testing.assert_allclose(fresh, saved)

    def test_sgd_velocity_matches_param_dtype(self):
        layer = Linear(4, 2)
        optimizer = SGD(layer.parameters(), lr=0.1, momentum=0.9)
        state = optimizer.state_dict()
        restored = SGD(Linear(4, 2).parameters(), lr=0.1, momentum=0.9)
        restored.load_state_dict({k: v.astype(np.float64) for k, v in state.items()})
        assert all(v.dtype == np.float32 for v in restored._velocity)

    def test_missing_state_key_raises(self):
        optimizer = AdamW(Linear(2, 2).parameters(), lr=1e-3)
        state = optimizer.state_dict()
        state.pop("v.0")
        fresh = AdamW(Linear(2, 2).parameters(), lr=1e-3)
        with pytest.raises(KeyError):
            fresh.load_state_dict(state)


class TestTrainerSmokeStepFloat32:
    @staticmethod
    def _one_training_step() -> float:
        from repro.core.model import KGLinkModel
        from repro.plm.config import PLMConfig
        from repro.plm.model import MiniBERT

        encoder = MiniBERT(PLMConfig(vocab_size=300, hidden_size=32, num_layers=1,
                                     num_heads=2, intermediate_size=64,
                                     max_position_embeddings=64, seed=5))
        model = KGLinkModel(encoder, num_labels=12, seed=5)
        optimizer = AdamW(model.parameters(), lr=1e-3)
        rng = np.random.default_rng(9)
        token_ids = rng.integers(0, 300, size=(2, 48))
        mask = np.ones_like(token_ids, dtype=bool)
        labels = rng.integers(0, 12, size=(4,))
        batch_index = np.repeat(np.arange(2), 2)
        positions = np.tile(np.array([0, 24]), 2)

        hidden = model.encode(token_ids, mask)
        cls_vectors = model.gather_positions(hidden, batch_index, positions)
        logits = model.classification_logits(cls_vectors)
        loss = F.cross_entropy(logits, labels)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        return float(loss.data)

    def test_float32_default_matches_float64_oracle_within_tolerance(self):
        loss32 = self._one_training_step()
        with dtype_policy(FLOAT64_POLICY):
            loss64 = self._one_training_step()
        assert np.isfinite(loss32)
        assert loss32 == pytest.approx(loss64, rel=1e-3, abs=1e-3)
