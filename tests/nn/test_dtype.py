"""Tests of the configurable default dtype and the grad-free inference fast path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import LayerNorm, Linear
from repro.nn.optim import AdamW
from repro.nn.tensor import (
    Tensor,
    get_default_dtype,
    no_grad,
    set_default_dtype,
)


@pytest.fixture()
def float32_default():
    previous = set_default_dtype(np.float32)
    try:
        yield
    finally:
        set_default_dtype(previous)


class TestDefaultDtype:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.dtype(np.float64)
        assert Tensor([1.0, 2.0]).dtype == np.float64

    def test_set_returns_previous(self):
        previous = set_default_dtype("float32")
        try:
            assert previous == np.dtype(np.float64)
            assert get_default_dtype() == np.dtype(np.float32)
        finally:
            set_default_dtype(previous)

    def test_rejects_non_float_dtypes(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int64)
        with pytest.raises(ValueError):
            set_default_dtype(np.float16)

    def test_tensor_creation_uses_default(self, float32_default):
        assert Tensor([1.0, 2.0]).dtype == np.float32
        assert Tensor(np.zeros(3, dtype=np.float64)).dtype == np.float32
        assert Tensor.zeros(2, 2).dtype == np.float32

    def test_ops_preserve_float32(self, float32_default):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        w = Tensor(np.ones((3, 3)))
        assert (x + 1.0).dtype == np.float32
        assert (x * 2.0).dtype == np.float32
        assert (x @ w).dtype == np.float32
        assert F.gelu(x).dtype == np.float32
        assert F.softmax(x).dtype == np.float32
        norm = LayerNorm(3)
        assert norm(x).dtype == np.float32

    def test_float32_model_survives_default_restore(self):
        # Regression: op outputs used to be re-converted to the *current*
        # global default, silently upcasting a float32 model to float64 after
        # the set/restore pattern from the set_default_dtype docstring.
        previous = set_default_dtype(np.float32)
        try:
            layer = Linear(4, 2)
            x = Tensor(np.ones((3, 4)))
        finally:
            set_default_dtype(previous)
        out = layer(x)  # forward pass runs after the restore
        assert out.dtype == np.float32
        assert F.gelu(out).dtype == np.float32
        assert (out * 2.0).dtype == np.float32

    def test_backward_works_in_float32(self, float32_default):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        loss = (x * 3.0).sum()
        loss.backward()
        assert x.grad is not None
        assert x.grad.dtype == np.float32
        np.testing.assert_allclose(x.grad, 3.0)

    def test_state_dict_round_trip_preserves_dtype(self, float32_default):
        layer = Linear(4, 2)
        assert layer.weight.data.dtype == np.float32
        state = layer.state_dict()
        layer.load_state_dict({k: v.astype(np.float64) for k, v in state.items()})
        assert layer.weight.data.dtype == np.float32


class TestNoGradFastPath:
    def test_no_graph_recorded_under_no_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with no_grad():
            out = F.gelu((x @ x) + x)
        assert not out.requires_grad
        assert out._backward is None
        assert out._parents == ()

    def test_no_graph_without_grad_inputs(self):
        x = Tensor(np.ones((2, 2)))
        out = (x @ x).relu().sum()
        assert not out.requires_grad
        assert out._backward is None
        assert out._parents == ()

    def test_graph_still_recorded_when_training(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        out = (x @ x).sum()
        assert out.requires_grad
        assert out._backward is not None
        assert out._parents != ()


class TestTrainerSmokeStepFloat32:
    @staticmethod
    def _one_training_step() -> float:
        from repro.core.model import KGLinkModel
        from repro.plm.config import PLMConfig
        from repro.plm.model import MiniBERT

        encoder = MiniBERT(PLMConfig(vocab_size=300, hidden_size=32, num_layers=1,
                                     num_heads=2, intermediate_size=64,
                                     max_position_embeddings=64, seed=5))
        model = KGLinkModel(encoder, num_labels=12, seed=5)
        optimizer = AdamW(model.parameters(), lr=1e-3)
        rng = np.random.default_rng(9)
        token_ids = rng.integers(0, 300, size=(2, 48))
        mask = np.ones_like(token_ids, dtype=bool)
        labels = rng.integers(0, 12, size=(4,))
        batch_index = np.repeat(np.arange(2), 2)
        positions = np.tile(np.array([0, 24]), 2)

        hidden = model.encode(token_ids, mask)
        cls_vectors = model.gather_positions(hidden, batch_index, positions)
        logits = model.classification_logits(cls_vectors)
        loss = F.cross_entropy(logits, labels)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        return float(loss.data)

    def test_float32_matches_float64_within_tolerance(self):
        loss64 = self._one_training_step()
        previous = set_default_dtype(np.float32)
        try:
            loss32 = self._one_training_step()
        finally:
            set_default_dtype(previous)
        assert np.isfinite(loss32)
        assert loss32 == pytest.approx(loss64, rel=1e-3, abs=1e-3)
