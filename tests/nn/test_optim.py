"""Tests of optimisers, schedules and gradient clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.layers import Parameter
from repro.nn.optim import AdamW, ConstantSchedule, LinearDecaySchedule, SGD, clip_grad_norm
from repro.nn.tensor import Tensor


def _quadratic_step(optimizer, parameter):
    """One optimisation step of f(w) = ||w||^2 / 2."""
    optimizer.zero_grad()
    (parameter * parameter).sum().backward()
    # gradient of 1/2 ||w||^2 would be w; here it's 2w, fine for convergence tests
    optimizer.step()


class TestSGD:
    def test_reduces_quadratic_objective(self):
        parameter = Parameter(np.array([5.0, -3.0]))
        optimizer = SGD([parameter], lr=0.1)
        initial = float((parameter.data ** 2).sum())
        for _ in range(50):
            _quadratic_step(optimizer, parameter)
        assert float((parameter.data ** 2).sum()) < initial * 1e-3

    def test_momentum_accelerates(self):
        plain = Parameter(np.array([5.0]))
        momentum = Parameter(np.array([5.0]))
        opt_plain = SGD([plain], lr=0.01)
        opt_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(30):
            _quadratic_step(opt_plain, plain)
            _quadratic_step(opt_momentum, momentum)
        assert abs(momentum.data[0]) < abs(plain.data[0])

    def test_skips_parameters_without_grad(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.1)
        optimizer.step()  # no gradient accumulated yet
        np.testing.assert_allclose(parameter.data, [1.0])

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdamW:
    def test_reduces_quadratic_objective(self):
        parameter = Parameter(np.array([4.0, -2.0, 1.0]))
        optimizer = AdamW([parameter], lr=0.1, weight_decay=0.0)
        for _ in range(200):
            _quadratic_step(optimizer, parameter)
        assert np.abs(parameter.data).max() < 1e-2

    def test_weight_decay_shrinks_weights_without_gradient_signal(self):
        parameter = Parameter(np.array([10.0]))
        optimizer = AdamW([parameter], lr=0.01, weight_decay=0.1)
        for _ in range(10):
            optimizer.zero_grad()
            (parameter * 0.0).sum().backward()
            optimizer.step()
        assert abs(parameter.data[0]) < 10.0

    def test_trains_small_network_to_fit_xor(self):
        rng = np.random.default_rng(0)
        x = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
        y = np.array([0, 1, 1, 0])
        model = nn.Sequential(nn.Linear(2, 16, rng=rng), nn.Linear(16, 2, rng=rng))

        class WithRelu(nn.Module):
            def __init__(self):
                super().__init__()
                self.first = nn.Linear(2, 16, rng=rng)
                self.second = nn.Linear(16, 2, rng=rng)

            def forward(self, inputs):
                return self.second(self.first(inputs).relu())

        model = WithRelu()
        optimizer = AdamW(model.parameters(), lr=0.05, weight_decay=0.0)
        from repro.nn import functional as F

        for _ in range(300):
            logits = model(Tensor(x))
            loss = F.cross_entropy(logits, y)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        predictions = np.argmax(model(Tensor(x)).data, axis=-1)
        np.testing.assert_array_equal(predictions, y)

    def test_step_counter_increments(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = AdamW([parameter], lr=0.1)
        _quadratic_step(optimizer, parameter)
        _quadratic_step(optimizer, parameter)
        assert optimizer._step == 2


class TestSchedules:
    def test_linear_decay_reaches_zero(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=1.0)
        schedule = LinearDecaySchedule(optimizer, total_steps=10)
        for _ in range(10):
            schedule.step()
        assert optimizer.lr == pytest.approx(0.0)

    def test_linear_decay_monotonic(self):
        optimizer = SGD([Parameter(np.array([1.0]))], lr=1.0)
        schedule = LinearDecaySchedule(optimizer, total_steps=5)
        rates = [schedule.step() for _ in range(5)]
        assert rates == sorted(rates, reverse=True)

    def test_linear_decay_clamps_after_total_steps(self):
        optimizer = SGD([Parameter(np.array([1.0]))], lr=1.0)
        schedule = LinearDecaySchedule(optimizer, total_steps=3, min_lr=0.1)
        for _ in range(10):
            schedule.step()
        assert optimizer.lr == pytest.approx(0.1)

    def test_linear_decay_rejects_bad_total_steps(self):
        optimizer = SGD([Parameter(np.array([1.0]))], lr=1.0)
        with pytest.raises(ValueError):
            LinearDecaySchedule(optimizer, total_steps=0)

    def test_constant_schedule_keeps_rate(self):
        optimizer = SGD([Parameter(np.array([1.0]))], lr=0.5)
        schedule = ConstantSchedule(optimizer)
        schedule.step()
        assert optimizer.lr == pytest.approx(0.5)


class TestClipGradNorm:
    def test_returns_zero_with_no_gradients(self):
        assert clip_grad_norm([Parameter(np.ones(3))], 1.0) == 0.0

    def test_norm_reported_and_clipped(self):
        parameter = Parameter(np.zeros(4))
        parameter.grad = np.full(4, 3.0)
        norm = clip_grad_norm([parameter], max_norm=1.0)
        assert norm == pytest.approx(6.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0, rel=1e-6)

    def test_no_clipping_below_threshold(self):
        parameter = Parameter(np.zeros(2))
        parameter.grad = np.array([0.3, 0.4])
        clip_grad_norm([parameter], max_norm=10.0)
        np.testing.assert_allclose(parameter.grad, [0.3, 0.4])
