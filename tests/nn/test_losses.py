"""Tests of the loss modules used by the multi-task objective."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.losses import CrossEntropyLoss, DMLMLoss, FixedWeightLoss, UncertaintyWeightedLoss
from repro.nn.tensor import Tensor


class TestCrossEntropyLoss:
    def test_matches_manual_value(self):
        logits = Tensor(np.log(np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]])))
        loss = CrossEntropyLoss()(logits, np.array([0, 1]))
        expected = -(np.log(0.7) + np.log(0.8)) / 2
        # rel 1e-6: the logits are rounded to the float32 compute dtype.
        assert float(loss.data) == pytest.approx(expected, rel=1e-6)

    def test_ignore_index_configurable(self):
        logits = Tensor(np.array([[5.0, -5.0], [0.0, 0.0]]))
        loss = CrossEntropyLoss(ignore_index=-1)(logits, np.array([0, -1]))
        assert float(loss.data) < 1e-4

    def test_class_weights_accepted(self):
        loss = CrossEntropyLoss(class_weights=np.array([1.0, 2.0]))
        value = loss(Tensor(np.zeros((2, 2))), np.array([0, 1]))
        assert np.isfinite(float(value.data))


class TestDMLMLoss:
    def test_rejects_non_positive_temperature(self):
        with pytest.raises(ValueError):
            DMLMLoss(temperature=0.0)

    def test_teacher_distribution_sums_to_one(self, rng):
        loss = DMLMLoss(temperature=2.0)
        probs = loss.teacher_distribution(rng.normal(size=(4, 9)))
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_temperature_softens_distribution(self, rng):
        logits = rng.normal(size=(1, 6)) * 5
        sharp = DMLMLoss(temperature=1.0).teacher_distribution(logits)
        soft = DMLMLoss(temperature=5.0).teacher_distribution(logits)
        assert soft.max() < sharp.max()

    def test_loss_zero_when_student_equals_sharp_teacher(self):
        loss = DMLMLoss(temperature=1.0)
        teacher_logits = np.array([[50.0, 0.0, 0.0]])
        student = Tensor(teacher_logits.copy())
        value = loss(student, teacher_logits)
        assert float(value.data) == pytest.approx(0.0, abs=1e-4)

    def test_loss_decreases_as_student_approaches_teacher(self, rng):
        loss = DMLMLoss(temperature=2.0)
        teacher_logits = rng.normal(size=(2, 5)) * 3
        far = loss(Tensor(-teacher_logits), teacher_logits)
        near = loss(Tensor(teacher_logits * 0.9), teacher_logits)
        assert float(near.data) < float(far.data)

    def test_gradients_flow_only_into_student(self):
        loss = DMLMLoss()
        student = Tensor(np.zeros((1, 4)), requires_grad=True)
        loss(student, np.array([[1.0, 2.0, 3.0, 4.0]])).backward()
        assert student.grad is not None


class TestUncertaintyWeightedLoss:
    def test_initial_sigma_values(self):
        loss = UncertaintyWeightedLoss(0.5, -0.5)
        assert loss.sigma_values == (0.5, -0.5)

    def test_combination_matches_formula(self):
        loss_module = UncertaintyWeightedLoss(0.0, 0.0)
        dmlm = Tensor(np.array(2.0))
        ce = Tensor(np.array(4.0))
        total = loss_module(dmlm, ce)
        # With log sigma^2 = 0: 0.5*2 + 0.5*4 + 0 = 3
        assert float(total.data) == pytest.approx(3.0)

    def test_sigma_parameters_receive_gradients(self):
        loss_module = UncertaintyWeightedLoss()
        total = loss_module(Tensor(np.array(1.0)), Tensor(np.array(1.0)))
        total.backward()
        assert loss_module.log_sigma0_sq.grad is not None
        assert loss_module.log_sigma1_sq.grad is not None

    def test_sigma_adapts_to_noisy_task(self):
        """The uncertainty of a consistently larger loss should grow."""
        loss_module = UncertaintyWeightedLoss()
        from repro.nn.optim import SGD

        optimizer = SGD(loss_module.parameters(), lr=0.05)
        for _ in range(100):
            total = loss_module(Tensor(np.array(10.0)), Tensor(np.array(0.1)))
            optimizer.zero_grad()
            total.backward()
            optimizer.step()
        sigma0, sigma1 = loss_module.sigma_values
        assert sigma0 > sigma1  # the noisy (large) DMLM task gets down-weighted

    def test_parameters_are_registered(self):
        assert len(UncertaintyWeightedLoss().parameters()) == 2


class TestFixedWeightLoss:
    def test_weights_follow_log_sigma(self):
        loss_module = FixedWeightLoss(log_sigma0_sq=0.0, log_sigma1_sq=np.log(4.0))
        total = loss_module(Tensor(np.array(2.0)), Tensor(np.array(8.0)))
        # 0.5*2 + (0.5/4)*8 = 1 + 1 = 2
        assert float(total.data) == pytest.approx(2.0)

    def test_has_no_trainable_parameters(self):
        assert FixedWeightLoss(0.0, 0.0).parameters() == []

    def test_sigma_values_reported(self):
        assert FixedWeightLoss(0.4, 1.4).sigma_values == (0.4, 1.4)
