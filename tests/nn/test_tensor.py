"""Tests of the autograd tensor: values and gradients of every primitive.

The whole module runs under the float64 escape-hatch policy: central finite
differences (epsilon 1e-6) are meaningless in float32, and these tests are
the numerical oracle for every primitive.  Float32 behaviour of the default
policy is covered by tests/nn/test_dtype.py.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import (
    FLOAT64_POLICY,
    Tensor,
    dtype_policy,
    is_grad_enabled,
    no_grad,
)


@pytest.fixture(autouse=True)
def _float64_oracle():
    with dtype_policy(FLOAT64_POLICY):
        yield


def numerical_gradient(function, array: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued function of ``array``."""
    gradient = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = function(array)
        flat[index] = original - epsilon
        lower = function(array)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * epsilon)
    return gradient


def check_gradient(build_loss, shape, seed=0, atol=1e-5):
    """Compare autograd gradients against finite differences."""
    rng = np.random.default_rng(seed)
    base = rng.normal(size=shape)
    tensor = Tensor(base.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()
    numeric = numerical_gradient(lambda a: float(build_loss(Tensor(a)).data), base.copy())
    np.testing.assert_allclose(tensor.grad, numeric, atol=atol)


class TestTensorBasics:
    def test_construction_from_list(self):
        tensor = Tensor([1.0, 2.0, 3.0])
        assert tensor.shape == (3,)
        assert tensor.data.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_item_returns_float(self):
        assert Tensor([2.5]).item() == pytest.approx(2.5)

    def test_detach_cuts_graph(self):
        tensor = Tensor([1.0], requires_grad=True)
        detached = (tensor * 2).detach()
        assert not detached.requires_grad

    def test_len_and_size(self):
        tensor = Tensor(np.zeros((4, 5)))
        assert len(tensor) == 4
        assert tensor.size == 20
        assert tensor.ndim == 2

    def test_zeros_ones_randn_constructors(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert np.all(Tensor.ones(2, 2).data == 1.0)
        assert Tensor.randn(5, rng=np.random.default_rng(0)).shape == (5,)

    def test_randn_without_rng_is_deterministic(self):
        # Regression test (REP105): randn used to fall back to an unseeded
        # default_rng(), so weight init differed run-to-run.  The fallback
        # is now a fixed seed — two bare calls draw identical values.
        first = Tensor.randn(4, 3)
        second = Tensor.randn(4, 3)
        np.testing.assert_array_equal(first.data, second.data)
        # An explicit generator still overrides the fallback.
        seeded = Tensor.randn(4, 3, rng=np.random.default_rng(7))
        assert not np.array_equal(first.data, seeded.data)

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_non_scalar_requires_grad_argument(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        doubled = tensor * 2
        with pytest.raises(RuntimeError):
            doubled.backward()

    def test_zero_grad_resets(self):
        tensor = Tensor([1.0], requires_grad=True)
        (tensor * 3).sum().backward()
        assert tensor.grad is not None
        tensor.zero_grad()
        assert tensor.grad is None


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        tensor = Tensor([1.0], requires_grad=True)
        with no_grad():
            result = tensor * 2
        assert not result.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()

    def test_tensor_created_inside_no_grad_never_requires_grad(self):
        with no_grad():
            tensor = Tensor([1.0], requires_grad=True)
        assert not tensor.requires_grad

    def test_no_grad_is_thread_local(self):
        # A serving thread running inference under no_grad must not turn
        # gradients off for a concurrently training thread: with a
        # process-wide flag, overlapping no_grad blocks on two threads can
        # interleave save/restore and leave gradients disabled for good.
        import threading

        entered = threading.Event()
        release = threading.Event()
        seen: list[bool] = []

        def serve():
            with no_grad():
                entered.set()
                release.wait(timeout=5.0)
                seen.append(is_grad_enabled())

        worker = threading.Thread(target=serve)
        worker.start()
        try:
            assert entered.wait(timeout=5.0)
            # The worker sits inside no_grad; this thread still records.
            assert is_grad_enabled()
            tensor = Tensor([1.0], requires_grad=True)
            (tensor * 2).sum().backward()
            np.testing.assert_allclose(tensor.grad, [2.0])
        finally:
            release.set()
            worker.join(timeout=5.0)
        assert seen == [False]
        assert is_grad_enabled()


class TestArithmetic:
    def test_add_values(self):
        result = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(result.data, [4.0, 6.0])

    def test_add_broadcasting(self):
        result = Tensor(np.ones((2, 3))) + Tensor([1.0, 2.0, 3.0])
        np.testing.assert_allclose(result.data, [[2, 3, 4], [2, 3, 4]])

    def test_radd_with_scalar(self):
        result = 2.0 + Tensor([1.0])
        np.testing.assert_allclose(result.data, [3.0])

    def test_sub_and_rsub(self):
        np.testing.assert_allclose((Tensor([3.0]) - 1.0).data, [2.0])
        np.testing.assert_allclose((5.0 - Tensor([3.0])).data, [2.0])

    def test_mul_values(self):
        np.testing.assert_allclose((Tensor([2.0, 3.0]) * Tensor([4.0, 5.0])).data, [8.0, 15.0])

    def test_div_values(self):
        np.testing.assert_allclose((Tensor([8.0]) / 2.0).data, [4.0])
        np.testing.assert_allclose((8.0 / Tensor([2.0])).data, [4.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow_scalar_only(self):
        np.testing.assert_allclose((Tensor([2.0]) ** 3).data, [8.0])
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_values(self):
        left = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        right = Tensor(np.arange(12, dtype=float).reshape(3, 4))
        np.testing.assert_allclose((left @ right).data, left.data @ right.data)

    def test_add_gradient(self):
        check_gradient(lambda t: (t + t * 2).sum(), (3, 4))

    def test_mul_gradient(self):
        check_gradient(lambda t: (t * t).sum(), (2, 5))

    def test_div_gradient(self):
        check_gradient(lambda t: (t / 3.0 + 1.0 / (t + 10.0)).sum(), (4,))

    def test_pow_gradient(self):
        check_gradient(lambda t: (t ** 3).sum(), (3, 3))

    def test_matmul_gradient_left(self):
        rng = np.random.default_rng(1)
        right = rng.normal(size=(4, 2))
        check_gradient(lambda t: (t @ Tensor(right)).sum(), (3, 4))

    def test_matmul_gradient_right(self):
        rng = np.random.default_rng(2)
        left = rng.normal(size=(3, 4))
        check_gradient(lambda t: (Tensor(left) @ t).sum(), (4, 2))

    def test_broadcast_add_gradient(self):
        check_gradient(lambda t: (Tensor(np.ones((5, 3))) + t).sum(), (3,))

    def test_broadcast_mul_gradient(self):
        check_gradient(lambda t: (Tensor(np.full((4, 3), 2.0)) * t).sum(), (1, 3))

    def test_batched_matmul_gradient(self):
        rng = np.random.default_rng(3)
        other = rng.normal(size=(2, 4, 3))
        check_gradient(lambda t: (t @ Tensor(other)).sum(), (2, 5, 4))


class TestReductionsAndShape:
    def test_sum_all(self):
        assert Tensor(np.arange(6.0)).sum().item() == pytest.approx(15.0)

    def test_sum_axis_keepdims(self):
        result = Tensor(np.ones((2, 3))).sum(axis=1, keepdims=True)
        assert result.shape == (2, 1)

    def test_mean(self):
        assert Tensor([1.0, 2.0, 3.0]).mean().item() == pytest.approx(2.0)

    def test_mean_axis(self):
        result = Tensor(np.arange(6.0).reshape(2, 3)).mean(axis=0)
        np.testing.assert_allclose(result.data, [1.5, 2.5, 3.5])

    def test_max_value(self):
        assert Tensor([1.0, 5.0, 3.0]).max().item() == pytest.approx(5.0)

    def test_reshape_roundtrip(self):
        tensor = Tensor(np.arange(6.0))
        assert tensor.reshape(2, 3).shape == (2, 3)
        assert tensor.reshape((3, 2)).shape == (3, 2)

    def test_transpose_default_reverses(self):
        tensor = Tensor(np.zeros((2, 3, 4)))
        assert tensor.transpose().shape == (4, 3, 2)

    def test_transpose_with_axes(self):
        tensor = Tensor(np.zeros((2, 3, 4)))
        assert tensor.transpose(0, 2, 1).shape == (2, 4, 3)

    def test_swapaxes(self):
        tensor = Tensor(np.zeros((2, 3, 4)))
        assert tensor.swapaxes(0, 2).shape == (4, 3, 2)

    def test_getitem_slice(self):
        tensor = Tensor(np.arange(10.0))
        np.testing.assert_allclose(tensor[2:5].data, [2.0, 3.0, 4.0])

    def test_getitem_fancy(self):
        tensor = Tensor(np.arange(12.0).reshape(3, 4))
        picked = tensor[np.array([0, 2]), np.array([1, 3])]
        np.testing.assert_allclose(picked.data, [1.0, 11.0])

    def test_sum_gradient(self):
        check_gradient(lambda t: (t.sum(axis=1) ** 2).sum(), (3, 4))

    def test_mean_gradient(self):
        check_gradient(lambda t: (t.mean(axis=0) ** 2).sum(), (4, 2))

    def test_max_gradient(self):
        check_gradient(lambda t: t.max(axis=1).sum(), (3, 5), seed=7)

    def test_reshape_gradient(self):
        check_gradient(lambda t: (t.reshape(6) ** 2).sum(), (2, 3))

    def test_transpose_gradient(self):
        check_gradient(lambda t: (t.transpose(1, 0) ** 2).sum(), (2, 3))

    def test_getitem_gradient_with_duplicates(self):
        index = np.array([0, 0, 1])

        def loss(t):
            return (t[index] ** 2).sum()

        check_gradient(loss, (3, 2))


class TestNonLinearities:
    def test_exp_log_roundtrip(self):
        tensor = Tensor([1.0, 2.0])
        np.testing.assert_allclose(tensor.exp().log().data, tensor.data, atol=1e-12)

    def test_sqrt(self):
        np.testing.assert_allclose(Tensor([4.0, 9.0]).sqrt().data, [2.0, 3.0])

    def test_tanh_range(self):
        values = Tensor(np.linspace(-5, 5, 11)).tanh().data
        assert np.all(values > -1.0) and np.all(values < 1.0)

    def test_relu_clamps_negatives(self):
        np.testing.assert_allclose(Tensor([-1.0, 0.0, 2.0]).relu().data, [0.0, 0.0, 2.0])

    def test_sigmoid_midpoint(self):
        assert Tensor([0.0]).sigmoid().item() == pytest.approx(0.5)

    def test_exp_gradient(self):
        check_gradient(lambda t: t.exp().sum(), (3, 2))

    def test_log_gradient(self):
        check_gradient(lambda t: (t + 5.0).log().sum(), (4,))

    def test_tanh_gradient(self):
        check_gradient(lambda t: t.tanh().sum(), (3, 3))

    def test_relu_gradient(self):
        check_gradient(lambda t: (t.relu() ** 2).sum(), (4, 4), seed=5)

    def test_sigmoid_gradient(self):
        check_gradient(lambda t: t.sigmoid().sum(), (2, 3))


class TestConcatStack:
    def test_concat_values(self):
        result = Tensor.concat([Tensor([1.0, 2.0]), Tensor([3.0])], axis=0)
        np.testing.assert_allclose(result.data, [1.0, 2.0, 3.0])

    def test_stack_values(self):
        result = Tensor.stack([Tensor([1.0, 2.0]), Tensor([3.0, 4.0])], axis=0)
        assert result.shape == (2, 2)

    def test_concat_gradient(self):
        left = Tensor(np.ones((2, 2)), requires_grad=True)
        right = Tensor(np.ones((3, 2)), requires_grad=True)
        Tensor.concat([left, right], axis=0).sum().backward()
        np.testing.assert_allclose(left.grad, np.ones((2, 2)))
        np.testing.assert_allclose(right.grad, np.ones((3, 2)))

    def test_stack_gradient(self):
        parts = [Tensor(np.full((2,), float(i)), requires_grad=True) for i in range(3)]
        (Tensor.stack(parts, axis=0) * 2).sum().backward()
        for part in parts:
            np.testing.assert_allclose(part.grad, [2.0, 2.0])


class TestGraphMechanics:
    def test_gradient_accumulates_across_uses(self):
        tensor = Tensor([1.0], requires_grad=True)
        loss = (tensor * 2 + tensor * 3).sum()
        loss.backward()
        np.testing.assert_allclose(tensor.grad, [5.0])

    def test_deep_chain_backward(self):
        tensor = Tensor([1.0], requires_grad=True)
        value = tensor
        for _ in range(300):
            value = value * 1.01
        value.sum().backward()
        assert tensor.grad is not None and tensor.grad[0] == pytest.approx(1.01 ** 300, rel=1e-6)

    def test_diamond_graph(self):
        tensor = Tensor([2.0], requires_grad=True)
        left = tensor * 3
        right = tensor * 4
        (left * right).sum().backward()
        # d/dx (3x * 4x) = 24x = 48
        np.testing.assert_allclose(tensor.grad, [48.0])

    def test_backward_with_explicit_gradient(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        (tensor * 3).backward(np.array([1.0, 0.5]))
        np.testing.assert_allclose(tensor.grad, [3.0, 1.5])
