"""Parity and gradcheck tests for the fused attention node.

The fused :func:`~repro.nn.functional.scaled_dot_product_attention` must be
indistinguishable from the unfused chain of primitive ops (scale → bias →
mask → softmax → dropout → weighted sum) in both the forward values and every
gradient, and must pass numeric gradcheck on its hand-derived backward.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import FLOAT64_POLICY, Tensor, dtype_policy, no_grad, set_default_dtype

from tests.nn.test_tensor import numerical_gradient

BATCH, HEADS, SEQ, DIM = 2, 3, 5, 4


def _inputs(rng, requires_grad=True):
    shape = (BATCH, HEADS, SEQ, DIM)
    q = Tensor(rng.normal(size=shape), requires_grad=requires_grad)
    k = Tensor(rng.normal(size=shape), requires_grad=requires_grad)
    v = Tensor(rng.normal(size=shape), requires_grad=requires_grad)
    return q, k, v


def _unfused(q, k, v, mask=None, bias=None):
    scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / float(np.sqrt(DIM)))
    if bias is not None:
        scores = scores + bias
    if mask is not None:
        blocked = ~np.asarray(mask, dtype=bool)[:, None, None, :]
        scores = F.masked_fill(scores, np.broadcast_to(blocked, scores.shape), -1e9)
    return F.softmax(scores, axis=-1) @ v


def _mask():
    mask = np.ones((BATCH, SEQ), dtype=bool)
    mask[0, 3:] = False
    mask[1, 4:] = False
    return mask


class TestForwardParity:
    @pytest.mark.parametrize("with_mask", [False, True])
    @pytest.mark.parametrize("with_bias", [False, True])
    def test_matches_unfused_chain(self, rng, with_mask, with_bias):
        q, k, v = _inputs(rng)
        mask = _mask() if with_mask else None
        bias = Tensor(rng.normal(size=(1, HEADS, SEQ, SEQ))) if with_bias else None
        fused = F.scaled_dot_product_attention(
            q, k, v, attention_mask=mask, attention_bias=bias
        )
        reference = _unfused(q, k, v, mask=mask, bias=bias)
        np.testing.assert_allclose(fused.data, reference.data, atol=1e-6)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_parity_across_dtypes(self, rng, dtype):
        previous = set_default_dtype(dtype)
        try:
            q, k, v = _inputs(rng)
            bias = Tensor(rng.normal(size=(1, HEADS, SEQ, SEQ)))
            mask = _mask()
            fused = F.scaled_dot_product_attention(
                q, k, v, attention_mask=mask, attention_bias=bias
            )
            reference = _unfused(q, k, v, mask=mask, bias=bias)
            assert fused.dtype == dtype
            np.testing.assert_allclose(fused.data, reference.data, atol=1e-6)
        finally:
            set_default_dtype(previous)

    def test_blocked_positions_get_zero_weight(self, rng):
        q, k, v = _inputs(rng, requires_grad=False)
        mask = _mask()
        perturbed = Tensor(v.data.copy())
        perturbed.data[0, :, 3:, :] += 100.0  # masked-out key rows of table 0
        base = F.scaled_dot_product_attention(q, k, v, attention_mask=mask)
        out = F.scaled_dot_product_attention(q, k, perturbed, attention_mask=mask)
        np.testing.assert_allclose(base.data[0, :, :3], out.data[0, :, :3], atol=1e-8)

    def test_no_graph_under_no_grad(self, rng):
        q, k, v = _inputs(rng)
        with no_grad():
            out = F.scaled_dot_product_attention(q, k, v)
        assert not out.requires_grad and out._backward is None


class TestGradientParity:
    @pytest.fixture(autouse=True)
    def _float64_oracle(self):
        # Central finite differences need float64; the fused-vs-unfused parity
        # tests elsewhere in this module stay on the default float32 policy.
        with dtype_policy(FLOAT64_POLICY):
            yield

    def test_gradients_match_unfused_chain(self, rng):
        mask = _mask()
        grads = {}
        for fused in (True, False):
            q, k, v = _inputs(np.random.default_rng(5))
            bias = Tensor(np.random.default_rng(6).normal(size=(1, HEADS, SEQ, SEQ)),
                          requires_grad=True)
            if fused:
                out = F.scaled_dot_product_attention(
                    q, k, v, attention_mask=mask, attention_bias=bias
                )
            else:
                out = _unfused(q, k, v, mask=mask, bias=bias)
            (out * out).sum().backward()
            grads[fused] = (q.grad, k.grad, v.grad, bias.grad)
        for fused_grad, reference_grad in zip(grads[True], grads[False], strict=True):
            np.testing.assert_allclose(fused_grad, reference_grad, atol=1e-9)

    @pytest.mark.parametrize("argument", ["q", "k", "v", "bias"])
    def test_numeric_gradcheck(self, rng, argument):
        mask = _mask()
        base = {
            "q": rng.normal(size=(BATCH, HEADS, SEQ, DIM)),
            "k": rng.normal(size=(BATCH, HEADS, SEQ, DIM)),
            "v": rng.normal(size=(BATCH, HEADS, SEQ, DIM)),
            "bias": rng.normal(size=(1, HEADS, SEQ, SEQ)),
        }

        def loss_for(array: np.ndarray) -> Tensor:
            tensors = {
                name: Tensor(array if name == argument else value)
                for name, value in base.items()
            }
            out = F.scaled_dot_product_attention(
                tensors["q"], tensors["k"], tensors["v"],
                attention_mask=mask, attention_bias=tensors["bias"],
            )
            return (out * out).sum()

        probe = Tensor(base[argument].copy(), requires_grad=True)
        others = {
            name: Tensor(value) for name, value in base.items() if name != argument
        }
        arguments = dict(others)
        arguments[argument] = probe
        out = F.scaled_dot_product_attention(
            arguments["q"], arguments["k"], arguments["v"],
            attention_mask=mask, attention_bias=arguments["bias"],
        )
        (out * out).sum().backward()
        numeric = numerical_gradient(
            lambda a: float(loss_for(a).data), base[argument].copy()
        )
        np.testing.assert_allclose(probe.grad, numeric, atol=1e-5)

    def test_fully_masked_row_blocks_gradients(self, rng):
        """A fully-padded sequence must contribute no q/k/bias gradient.

        The softmax over an all-blocked row degenerates to uniform weights
        (not zeros), so the fused backward zeroes it explicitly — matching
        the unfused chain, where masked_fill blocks every blocked position.
        """
        mask = np.ones((BATCH, SEQ), dtype=bool)
        mask[0, :] = False  # table 0 entirely padding
        grads = {}
        for fused in (True, False):
            q, k, v = _inputs(np.random.default_rng(8))
            bias = Tensor(np.random.default_rng(9).normal(size=(1, HEADS, SEQ, SEQ)),
                          requires_grad=True)
            if fused:
                out = F.scaled_dot_product_attention(
                    q, k, v, attention_mask=mask, attention_bias=bias
                )
            else:
                out = _unfused(q, k, v, mask=mask, bias=bias)
            (out * out).sum().backward()
            grads[fused] = (q.grad, k.grad, v.grad, bias.grad)
        for fused_grad, reference_grad in zip(grads[True], grads[False], strict=True):
            np.testing.assert_allclose(fused_grad, reference_grad, atol=1e-9)
        np.testing.assert_array_equal(grads[True][0][0], 0.0)  # q grad, table 0
        np.testing.assert_array_equal(grads[True][1][0], 0.0)  # k grad, table 0

    def test_dropout_backward_matches_unfused(self):
        x = np.random.default_rng(2).normal(size=(BATCH, 6, 16))
        grads = {}
        for fused in (True, False):
            layer = nn.MultiHeadSelfAttention(
                hidden_size=16, num_heads=4, dropout=0.35, rng=np.random.default_rng(9)
            )
            layer.fused = fused
            layer.train()
            inp = Tensor(x.copy(), requires_grad=True)
            layer(inp).sum().backward()
            grads[fused] = (inp.grad, layer.qkv.weight.grad, layer.output.weight.grad)
        for fused_grad, reference_grad in zip(grads[True], grads[False], strict=True):
            np.testing.assert_allclose(fused_grad, reference_grad, atol=1e-9)


class TestValidation:
    def test_rejects_mismatched_head_dim(self, rng):
        q = Tensor(rng.normal(size=(1, 1, 3, 4)))
        k = Tensor(rng.normal(size=(1, 1, 3, 5)))
        with pytest.raises(ValueError):
            F.scaled_dot_product_attention(q, k, k)

    def test_requires_rng_for_training_dropout(self, rng):
        q, k, v = _inputs(rng, requires_grad=False)
        with pytest.raises(ValueError):
            F.scaled_dot_product_attention(q, k, v, dropout_p=0.5, training=True)
