"""Tests of model weight serialisation."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn.serialization import load_module, load_state_dict, save_module, save_state_dict


class TestStateDictFiles:
    def test_roundtrip_preserves_arrays(self, tmp_path):
        state = {"a.weight": np.arange(6.0).reshape(2, 3), "b.bias": np.zeros(4)}
        path = save_state_dict(state, tmp_path / "model.npz")
        loaded = load_state_dict(path)
        assert set(loaded) == set(state)
        np.testing.assert_allclose(loaded["a.weight"], state["a.weight"])

    def test_extension_added_when_missing(self, tmp_path):
        path = save_state_dict({"x": np.ones(2)}, tmp_path / "weights")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_load_without_extension(self, tmp_path):
        save_state_dict({"x": np.ones(3)}, tmp_path / "weights")
        loaded = load_state_dict(tmp_path / "weights")
        np.testing.assert_allclose(loaded["x"], np.ones(3))

    def test_creates_parent_directories(self, tmp_path):
        path = save_state_dict({"x": np.ones(1)}, tmp_path / "deep" / "dir" / "w.npz")
        assert path.exists()


class TestModuleSaveLoad:
    def test_module_roundtrip(self, tmp_path):
        source = nn.Linear(5, 3)
        path = save_module(source, tmp_path / "linear.npz")
        target = nn.Linear(5, 3, rng=np.random.default_rng(123))
        load_module(target, path)
        np.testing.assert_allclose(source.weight.data, target.weight.data)
        np.testing.assert_allclose(source.bias.data, target.bias.data)

    def test_nested_module_roundtrip(self, tmp_path):
        source = nn.TransformerEncoderLayer(8, 2, 16)
        path = save_module(source, tmp_path / "layer.npz")
        target = nn.TransformerEncoderLayer(8, 2, 16, rng=np.random.default_rng(7))
        load_module(target, path)
        for (name_a, param_a), (name_b, param_b) in zip(
            source.named_parameters(), target.named_parameters(), strict=True
        ):
            assert name_a == name_b
            np.testing.assert_allclose(param_a.data, param_b.data)
