"""Tests of the fused functional operations (values and gradients).

Runs under the float64 escape-hatch policy: the finite-difference gradchecks
and the tight value tolerances here are the numerical oracle for the fused
ops.  Float32 behaviour of the default policy is covered by
tests/nn/test_dtype.py.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import FLOAT64_POLICY, Tensor, dtype_policy

from tests.nn.test_tensor import numerical_gradient


@pytest.fixture(autouse=True)
def _float64_oracle():
    with dtype_policy(FLOAT64_POLICY):
        yield


def _numeric(build_loss, base, atol=1e-5):
    tensor = Tensor(base.copy(), requires_grad=True)
    build_loss(tensor).backward()
    numeric = numerical_gradient(lambda a: float(build_loss(Tensor(a)).data), base.copy())
    np.testing.assert_allclose(tensor.grad, numeric, atol=atol)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(4, 7))))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_invariant_to_constant_shift(self, rng):
        logits = rng.normal(size=(3, 5))
        a = F.softmax(Tensor(logits)).data
        b = F.softmax(Tensor(logits + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_handles_large_values(self):
        out = F.softmax(Tensor([[1000.0, 0.0]]))
        assert np.isfinite(out.data).all()

    def test_gradient(self, rng):
        weights = rng.normal(size=(3, 4))
        _numeric(lambda t: (F.softmax(t) * Tensor(weights)).sum(), rng.normal(size=(3, 4)))

    def test_axis_argument(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(2, 3, 4))), axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones((2, 4)), atol=1e-12)


class TestLogSoftmax:
    def test_matches_log_of_softmax(self, rng):
        logits = rng.normal(size=(5, 6))
        np.testing.assert_allclose(
            F.log_softmax(Tensor(logits)).data,
            np.log(F.softmax(Tensor(logits)).data),
            atol=1e-12,
        )

    def test_gradient(self, rng):
        weights = rng.normal(size=(2, 5))
        _numeric(lambda t: (F.log_softmax(t) * Tensor(weights)).sum(), rng.normal(size=(2, 5)))


class TestGelu:
    def test_zero_at_zero(self):
        assert F.gelu(Tensor([0.0])).item() == pytest.approx(0.0)

    def test_approaches_identity_for_large_positive(self):
        assert F.gelu(Tensor([10.0])).item() == pytest.approx(10.0, rel=1e-4)

    def test_approaches_zero_for_large_negative(self):
        assert F.gelu(Tensor([-10.0])).item() == pytest.approx(0.0, abs=1e-4)

    def test_gradient(self, rng):
        _numeric(lambda t: F.gelu(t).sum(), rng.normal(size=(4, 3)))


class TestDropout:
    def test_identity_in_eval_mode(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        out = F.dropout(x, p=0.5, training=False, rng=rng)
        np.testing.assert_allclose(out.data, x.data)

    def test_identity_with_zero_probability(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        out = F.dropout(x, p=0.0, training=True, rng=rng)
        np.testing.assert_allclose(out.data, x.data)

    def test_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, p=0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_zeroes_fraction(self):
        rng = np.random.default_rng(0)
        out = F.dropout(Tensor(np.ones((100, 100))), p=0.4, training=True, rng=rng)
        zero_fraction = float((out.data == 0).mean())
        assert zero_fraction == pytest.approx(0.4, abs=0.03)

    def test_gradient_respects_mask(self):
        rng = np.random.default_rng(1)
        x = Tensor(np.ones((5, 5)), requires_grad=True)
        out = F.dropout(x, p=0.5, training=True, rng=rng)
        out.sum().backward()
        # Gradient must be zero exactly where the output was dropped.
        assert np.all((x.grad == 0) == (out.data == 0))


class TestLayerNorm:
    def test_output_normalised(self, rng):
        x = Tensor(rng.normal(loc=3.0, scale=2.0, size=(4, 8)))
        out = F.layer_norm(x, Tensor(np.ones(8)), Tensor(np.zeros(8)))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-7)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(4), atol=1e-3)

    def test_scale_and_shift_applied(self, rng):
        x = Tensor(rng.normal(size=(2, 4)))
        out = F.layer_norm(x, Tensor(np.full(4, 2.0)), Tensor(np.full(4, 1.0)))
        base = F.layer_norm(x, Tensor(np.ones(4)), Tensor(np.zeros(4)))
        np.testing.assert_allclose(out.data, base.data * 2.0 + 1.0, atol=1e-9)

    def test_gradient_wrt_input(self, rng):
        weight = Tensor(rng.normal(size=6) + 1.0)
        bias = Tensor(rng.normal(size=6))
        _numeric(lambda t: (F.layer_norm(t, weight, bias) ** 2).sum(),
                 rng.normal(size=(3, 6)), atol=1e-4)

    def test_gradient_wrt_weight_and_bias(self, rng):
        x = rng.normal(size=(3, 5))
        weight = Tensor(np.ones(5), requires_grad=True)
        bias = Tensor(np.zeros(5), requires_grad=True)
        (F.layer_norm(Tensor(x), weight, bias) ** 2).sum().backward()
        assert weight.grad is not None and weight.grad.shape == (5,)
        assert bias.grad is not None and bias.grad.shape == (5,)


class TestEmbeddingLookup:
    def test_gathers_rows(self, rng):
        weight = Tensor(rng.normal(size=(10, 4)))
        indices = np.array([[1, 2], [3, 1]])
        out = F.embedding_lookup(weight, indices)
        np.testing.assert_allclose(out.data, weight.data[indices])

    def test_gradient_accumulates_duplicates(self):
        weight = Tensor(np.zeros((5, 3)), requires_grad=True)
        F.embedding_lookup(weight, np.array([1, 1, 2])).sum().backward()
        np.testing.assert_allclose(weight.grad[1], [2.0, 2.0, 2.0])
        np.testing.assert_allclose(weight.grad[2], [1.0, 1.0, 1.0])
        np.testing.assert_allclose(weight.grad[0], [0.0, 0.0, 0.0])


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert float(loss.data) < 1e-6

    def test_uniform_prediction_log_classes(self):
        logits = Tensor(np.zeros((4, 8)))
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert float(loss.data) == pytest.approx(np.log(8), rel=1e-9)

    def test_ignore_index_excluded(self):
        logits = Tensor(np.array([[10.0, -10.0], [0.0, 0.0]]))
        loss_with = F.cross_entropy(logits, np.array([0, -100]))
        assert float(loss_with.data) < 1e-6

    def test_all_ignored_returns_zero_like_loss(self):
        logits = Tensor(np.zeros((2, 3)))
        loss = F.cross_entropy(logits, np.array([-100, -100]))
        assert float(loss.data) == pytest.approx(0.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros(2, dtype=int))

    def test_gradient(self, rng):
        targets = np.array([0, 2, 1])
        _numeric(lambda t: F.cross_entropy(t, targets), rng.normal(size=(3, 4)))

    def test_gradient_with_ignore_index(self, rng):
        targets = np.array([0, -100, 1])
        _numeric(lambda t: F.cross_entropy(t, targets), rng.normal(size=(3, 4)))

    def test_class_weights_change_loss(self, rng):
        logits = rng.normal(size=(4, 3))
        targets = np.array([0, 1, 2, 0])
        plain = F.cross_entropy(Tensor(logits), targets)
        weighted = F.cross_entropy(Tensor(logits), targets,
                                   class_weights=np.array([10.0, 1.0, 1.0]))
        assert float(plain.data) != pytest.approx(float(weighted.data))


class TestSoftTargetLoss:
    def test_zero_when_student_matches_onehot_teacher(self):
        student = Tensor(np.array([[100.0, 0.0, 0.0]]))
        teacher = np.array([[1.0, 0.0, 0.0]])
        loss = F.kl_div_with_soft_targets(student, teacher)
        assert float(loss.data) == pytest.approx(0.0, abs=1e-6)

    def test_requires_matching_shapes(self):
        with pytest.raises(ValueError):
            F.kl_div_with_soft_targets(Tensor(np.zeros((2, 3))), np.zeros((2, 4)))

    def test_gradient(self, rng):
        teacher_logits = rng.normal(size=(3, 5))
        teacher = np.exp(teacher_logits) / np.exp(teacher_logits).sum(-1, keepdims=True)
        _numeric(lambda t: F.kl_div_with_soft_targets(t, teacher, temperature=2.0),
                 rng.normal(size=(3, 5)))

    def test_temperature_scales_gradient(self, rng):
        logits = rng.normal(size=(2, 4))
        teacher = np.full((2, 4), 0.25)
        grads = []
        for temperature in (1.0, 4.0):
            student = Tensor(logits.copy(), requires_grad=True)
            F.kl_div_with_soft_targets(student, teacher, temperature=temperature).backward()
            grads.append(np.abs(student.grad).sum())
        assert grads[0] > grads[1]


class TestMaskedFill:
    def test_replaces_masked_positions(self):
        x = Tensor(np.zeros((2, 2)))
        mask = np.array([[True, False], [False, True]])
        out = F.masked_fill(x, mask, -1e9)
        assert out.data[0, 0] == -1e9 and out.data[0, 1] == 0.0

    def test_gradient_blocked_at_masked_positions(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [False, False]])
        F.masked_fill(x, mask, -5.0).sum().backward()
        assert x.grad[0, 0] == 0.0 and x.grad[0, 1] == 1.0
