"""Tests of the module system and the transformer building blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor, no_grad


class TestModuleSystem:
    def test_named_parameters_recursive(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.Linear(8, 2))
        names = [name for name, _ in model.named_parameters()]
        assert any("item_0" in name for name in names)
        assert any("item_1" in name for name in names)

    def test_num_parameters_counts_scalars(self):
        layer = nn.Linear(3, 5)
        assert layer.num_parameters() == 3 * 5 + 5

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5), nn.Linear(2, 2))
        model.eval()
        assert not model.layers[0].training
        model.train()
        assert model.layers[0].training

    def test_zero_grad_clears_all(self):
        layer = nn.Linear(2, 2)
        out = layer(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        source = nn.Linear(4, 3)
        target = nn.Linear(4, 3, rng=np.random.default_rng(99))
        target.load_state_dict(source.state_dict())
        np.testing.assert_allclose(source.weight.data, target.weight.data)

    def test_load_state_dict_rejects_missing_keys(self):
        layer = nn.Linear(2, 2)
        with pytest.raises(KeyError):
            layer.load_state_dict({})

    def test_load_state_dict_rejects_wrong_shape(self):
        layer = nn.Linear(2, 2)
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_module_list_len_and_getitem(self):
        modules = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(modules) == 2
        assert isinstance(modules[1], nn.Linear)

    def test_module_list_append_registers_parameters(self):
        modules = nn.ModuleList()
        modules.append(nn.Linear(2, 3))
        assert len(list(modules.named_parameters())) == 2

    def test_module_list_cannot_be_called(self):
        with pytest.raises(RuntimeError):
            nn.ModuleList([nn.Linear(1, 1)])(Tensor([1.0]))


class TestLinear:
    def test_output_shape(self):
        layer = nn.Linear(6, 3)
        assert layer(Tensor(np.zeros((5, 6)))).shape == (5, 3)

    def test_no_bias_option(self):
        layer = nn.Linear(4, 2, bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 8

    def test_matches_manual_computation(self, rng):
        layer = nn.Linear(3, 2)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, atol=1e-12)

    def test_supports_3d_input(self):
        layer = nn.Linear(4, 2)
        assert layer(Tensor(np.zeros((2, 5, 4)))).shape == (2, 5, 2)

    def test_gradients_flow_to_weight_and_bias(self):
        layer = nn.Linear(3, 2)
        layer(Tensor(np.ones((2, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestEmbedding:
    def test_lookup_shape(self):
        layer = nn.Embedding(10, 6)
        assert layer(np.array([[1, 2, 3]])).shape == (1, 3, 6)

    def test_out_of_range_raises(self):
        layer = nn.Embedding(5, 2)
        with pytest.raises(IndexError):
            layer(np.array([7]))

    def test_negative_index_raises(self):
        layer = nn.Embedding(5, 2)
        with pytest.raises(IndexError):
            layer(np.array([-1]))

    def test_gradient_shape(self):
        layer = nn.Embedding(7, 3)
        layer(np.array([0, 1, 1])).sum().backward()
        assert layer.weight.grad.shape == (7, 3)

    def test_out_of_range_raises_under_no_grad(self):
        layer = nn.Embedding(5, 2)
        with no_grad():
            with pytest.raises(IndexError):
                layer(np.array([7]))

    def test_lookup_matches_under_no_grad(self, rng):
        layer = nn.Embedding(9, 4)
        indices = np.array([[0, 3], [8, 1]])
        expected = layer(indices).data
        with no_grad():
            np.testing.assert_array_equal(layer(indices).data, expected)


class TestLayerNormModule:
    def test_learnable_parameters_exist(self):
        layer = nn.LayerNorm(8)
        assert layer.weight.data.shape == (8,)
        assert layer.bias.data.shape == (8,)

    def test_normalises_last_dim(self, rng):
        layer = nn.LayerNorm(16)
        out = layer(Tensor(rng.normal(loc=5, scale=3, size=(4, 16))))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-6)


class TestDropoutModule:
    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)

    def test_eval_mode_is_identity(self, rng):
        layer = nn.Dropout(0.9)
        layer.eval()
        x = Tensor(rng.normal(size=(5, 5)))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_train_mode_drops_values(self):
        layer = nn.Dropout(0.5, seed=1)
        out = layer(Tensor(np.ones((50, 50))))
        assert (out.data == 0).any()


class TestMultiHeadSelfAttention:
    def test_requires_divisible_heads(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(hidden_size=10, num_heads=3)

    def test_output_shape(self, rng):
        layer = nn.MultiHeadSelfAttention(hidden_size=16, num_heads=4, dropout=0.0)
        x = Tensor(rng.normal(size=(2, 7, 16)))
        assert layer(x).shape == (2, 7, 16)

    def test_padding_mask_blocks_information(self, rng):
        layer = nn.MultiHeadSelfAttention(hidden_size=8, num_heads=2, dropout=0.0)
        layer.eval()
        x = rng.normal(size=(1, 4, 8))
        mask = np.array([[True, True, False, False]])
        base = layer(Tensor(x), attention_mask=mask).data
        # Changing the masked positions must not change the unmasked outputs.
        perturbed = x.copy()
        perturbed[0, 2:] += 100.0
        out = layer(Tensor(perturbed), attention_mask=mask).data
        np.testing.assert_allclose(base[0, :2], out[0, :2], atol=1e-8)

    def test_attention_bias_changes_output(self, rng):
        layer = nn.MultiHeadSelfAttention(hidden_size=8, num_heads=2, dropout=0.0)
        layer.eval()
        x = Tensor(rng.normal(size=(1, 3, 8)))
        bias = Tensor(np.full((1, 2, 3, 3), 5.0) * np.tri(3))
        assert not np.allclose(layer(x).data, layer(x, attention_bias=bias).data)

    def test_gradients_reach_projections(self, rng):
        layer = nn.MultiHeadSelfAttention(hidden_size=8, num_heads=2, dropout=0.0)
        layer(Tensor(rng.normal(size=(2, 3, 8)), requires_grad=True)).sum().backward()
        assert layer.qkv.weight.grad is not None
        assert layer.output.weight.grad is not None

    def test_loads_legacy_unpacked_checkpoint(self, rng):
        layer = nn.MultiHeadSelfAttention(hidden_size=8, num_heads=2, dropout=0.0)
        layer.eval()
        state = layer.state_dict()
        legacy = {"output.weight": state["output.weight"], "output.bias": state["output.bias"]}
        for i, name in enumerate(("query", "key", "value")):
            legacy[f"{name}.weight"] = state["qkv.weight"][i * 8 : (i + 1) * 8]
            legacy[f"{name}.bias"] = state["qkv.bias"][i * 8 : (i + 1) * 8]
        restored = nn.MultiHeadSelfAttention(
            hidden_size=8, num_heads=2, dropout=0.0, rng=np.random.default_rng(123)
        )
        restored.eval()
        restored.load_state_dict(legacy)
        x = Tensor(rng.normal(size=(1, 4, 8)))
        np.testing.assert_array_equal(layer(x).data, restored(x).data)

    def test_dropout_streams_differ_across_layers(self):
        shared = np.random.default_rng(0)
        first = nn.MultiHeadSelfAttention(hidden_size=8, num_heads=2, dropout=0.5, rng=shared)
        second = nn.MultiHeadSelfAttention(hidden_size=8, num_heads=2, dropout=0.5, rng=shared)
        assert not np.array_equal(
            first.attn_dropout._rng.random(100), second.attn_dropout._rng.random(100)
        )

    def test_fused_and_unfused_agree_with_dropout(self, rng):
        x = rng.normal(size=(2, 5, 8))
        outs = []
        for fused in (True, False):
            layer = nn.MultiHeadSelfAttention(
                hidden_size=8, num_heads=2, dropout=0.4, rng=np.random.default_rng(11)
            )
            layer.fused = fused
            layer.train()
            outs.append(layer(Tensor(x.copy())).data)
        np.testing.assert_array_equal(outs[0], outs[1])


class TestTransformerEncoderLayer:
    def test_output_shape_preserved(self, rng):
        layer = nn.TransformerEncoderLayer(16, 4, 32, dropout=0.0)
        x = Tensor(rng.normal(size=(3, 5, 16)))
        assert layer(x).shape == (3, 5, 16)

    def test_eval_deterministic(self, rng):
        layer = nn.TransformerEncoderLayer(8, 2, 16, dropout=0.3)
        layer.eval()
        x = Tensor(rng.normal(size=(1, 4, 8)))
        np.testing.assert_allclose(layer(x).data, layer(x).data)

    def test_train_with_dropout_stochastic(self, rng):
        layer = nn.TransformerEncoderLayer(8, 2, 16, dropout=0.5)
        layer.train()
        x = Tensor(rng.normal(size=(1, 4, 8)))
        assert not np.allclose(layer(x).data, layer(x).data)

    def test_all_parameters_receive_gradients(self, rng):
        layer = nn.TransformerEncoderLayer(8, 2, 16, dropout=0.0)
        layer(Tensor(rng.normal(size=(2, 4, 8)))).sum().backward()
        missing = [name for name, p in layer.named_parameters() if p.grad is None]
        assert not missing

    def test_dropout_streams_decorrelated(self):
        shared = np.random.default_rng(0)
        first = nn.TransformerEncoderLayer(8, 2, 16, dropout=0.5, rng=shared)
        second = nn.TransformerEncoderLayer(8, 2, 16, dropout=0.5, rng=shared)
        draws = [
            module._rng.random(100)
            for module in (
                first.attention.attn_dropout, first.dropout,
                second.attention.attn_dropout, second.dropout,
            )
        ]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                assert not np.array_equal(draws[i], draws[j])
