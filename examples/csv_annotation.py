#!/usr/bin/env python3
"""Annotate your own CSV tables with a trained, persisted KGLink model.

The workflow a downstream user would follow:

1. train KGLink once on a labelled corpus and export it as a self-contained
   service bundle (``annotator.into_service().save(...)``);
2. later — possibly in another process, with no knowledge graph at hand —
   load the bundle (:meth:`repro.serve.AnnotationService.load`) and run it on
   CSV files that were never part of the training corpus
   (:func:`repro.data.table_from_csv`).

The script writes a few held-out tables to a temporary directory as CSV files,
reloads the persisted bundle and prints the predicted column types next to the
ground truth.

Run with::

    python examples/csv_annotation.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import KGLinkAnnotator, KGLinkConfig
from repro.data import SemTabConfig, SemTabGenerator, stratified_split, table_from_csv, table_to_csv
from repro.kg import KGWorldConfig, build_default_kg
from repro.serve import AnnotationService


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="kglink-csv-demo-"))
    print(f"working directory: {workdir}")

    print("1) building the knowledge graph and a training corpus ...")
    world = build_default_kg(KGWorldConfig().scaled(0.35))
    corpus = SemTabGenerator(world, SemTabConfig(num_tables=100)).generate()
    splits = stratified_split(corpus)

    print("2) training KGLink and saving it to disk ...")
    annotator = KGLinkAnnotator(
        world.graph,
        KGLinkConfig(epochs=6, batch_size=8, learning_rate=1e-3, pretrain_steps=20,
                     top_k_rows=10),
    )
    annotator.fit(splits.train, splits.validation)
    bundle_dir = annotator.into_service().save(workdir / "kglink-bundle")
    print(f"   saved bundle to {bundle_dir}")

    print("3) exporting a few held-out tables as CSV files ...")
    csv_paths = []
    for table in splits.test.tables[:3]:
        path = table_to_csv(table, workdir / f"{table.table_id}.csv")
        csv_paths.append(path)
        print(f"   wrote {path.name} ({table.n_rows} rows, {table.n_columns} columns)")

    print("4) loading the bundle (no graph needed) and annotating the CSV files ...")
    service = AnnotationService.load(bundle_dir)
    for path in csv_paths:
        table = table_from_csv(path)
        predictions = service.annotate(table)
        print(f"\n   {path.name}")
        for column, predicted in zip(table.columns, predictions, strict=True):
            preview = ", ".join(cell for cell in column.cells[:3] if cell)
            truth = column.label or "(unlabelled)"
            print(f"     [{predicted:>18s}] truth={truth:<18s} cells: {preview} ...")


if __name__ == "__main__":
    main()
