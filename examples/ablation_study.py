#!/usr/bin/env python3
"""Run a small ablation study of KGLink's components (paper Table II, demo scale).

Trains the full KGLink model and three ablated variants on the same corpus and
prints their accuracy / weighted F1 side by side:

* ``KGLink``          — full model;
* ``KGLink w/o msk``  — no column-type representation generation sub-task;
* ``KGLink w/o ct``   — no KG information at all;
* ``KGLink w/o fv``   — no feature vector.

Run with::

    python examples/ablation_study.py
"""

from __future__ import annotations

from repro.core import KGLinkAnnotator, KGLinkConfig
from repro.data import SemTabConfig, SemTabGenerator, stratified_split
from repro.kg import KGWorldConfig, build_default_kg
from repro.kg.linker import EntityLinker, LinkerConfig

VARIANTS = {
    "KGLink": {},
    "KGLink w/o msk": {"use_mask_task": False},
    "KGLink w/o ct": {"use_candidate_types": False, "use_feature_vector": False},
    "KGLink w/o fv": {"use_feature_vector": False},
}


def main() -> None:
    print("building world and corpus ...")
    world = build_default_kg(KGWorldConfig().scaled(0.4))
    corpus = SemTabGenerator(world, SemTabConfig(num_tables=120)).generate()
    splits = stratified_split(corpus)
    linker = EntityLinker(world.graph, LinkerConfig())

    base = dict(epochs=8, batch_size=8, learning_rate=1e-3, pretrain_steps=30, top_k_rows=10)
    rows = []
    for name, overrides in VARIANTS.items():
        print(f"training {name} ...")
        annotator = KGLinkAnnotator(world.graph, KGLinkConfig(**base, **overrides), linker=linker)
        annotator.fit(splits.train, splits.validation)
        result = annotator.evaluate(splits.test)
        rows.append((name, result.accuracy, result.weighted_f1, annotator.fit_seconds))

    print("\n=== ablation results (SemTab-style corpus) ===")
    print(f"{'variant':18s} {'accuracy':>9s} {'weighted F1':>12s} {'train (s)':>10s}")
    for name, accuracy, f1, seconds in rows:
        print(f"{name:18s} {accuracy:9.2f} {f1:12.2f} {seconds:10.1f}")


if __name__ == "__main__":
    main()
