#!/usr/bin/env python3
"""Quickstart: train KGLink on a small SemTab-style corpus and annotate a table.

Run with::

    python examples/quickstart.py

The script builds the synthetic WikiData-style knowledge graph, generates a
small KG-derived corpus, fine-tunes KGLink for a few epochs and prints the
evaluation metrics together with the annotation of one held-out table.
"""

from __future__ import annotations

from repro.core import KGLinkAnnotator, KGLinkConfig
from repro.data import SemTabConfig, SemTabGenerator, stratified_split
from repro.kg import KGWorldConfig, build_default_kg


def main() -> None:
    print("1) building the synthetic WikiData-style knowledge graph ...")
    world = build_default_kg(KGWorldConfig().scaled(0.4))
    print(f"   {world.graph.describe()}")

    print("2) generating a SemTab-style corpus and splitting 7:1:2 ...")
    corpus = SemTabGenerator(world, SemTabConfig(num_tables=120)).generate()
    splits = stratified_split(corpus)
    stats = corpus.statistics()
    print(f"   {stats['tables']} tables, {stats['columns']} columns, "
          f"{stats['labels']} column types")

    print("3) fitting KGLink (Part 1: KG candidate extraction, Part 2: multi-task PLM) ...")
    config = KGLinkConfig(epochs=8, batch_size=8, learning_rate=1e-3,
                          pretrain_steps=30, top_k_rows=10)
    annotator = KGLinkAnnotator(world.graph, config)
    history = annotator.fit(splits.train, splits.validation)
    print(f"   trained {history.epochs_completed} epochs in {annotator.fit_seconds:.1f}s "
          f"(Part 1 took {annotator.part1_seconds:.1f}s)")
    if history.validation_accuracy:
        print(f"   validation accuracy per epoch: "
              f"{[f'{a:.1f}' for a in history.validation_accuracy]}")

    print("4) evaluating on the held-out test split ...")
    result = annotator.evaluate(splits.test)
    print(f"   accuracy = {result.accuracy:.2f}   weighted F1 = {result.weighted_f1:.2f} "
          f"({result.num_columns} columns)")

    print("5) annotating one held-out table ...")
    table = splits.test.tables[0]
    predictions = annotator.annotate(table)
    for column, predicted in zip(table.columns, predictions, strict=True):
        preview = ", ".join(column.cells[:3])
        print(f"   [{predicted:>20s}]  truth={column.label:<20s}  cells: {preview} ...")


if __name__ == "__main__":
    main()
