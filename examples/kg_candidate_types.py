#!/usr/bin/env python3
"""Inspect Part 1 of KGLink: entity linking, overlapping scores, candidate types.

This example does not train any model.  It walks through the knowledge-graph
side of KGLink on a hand-built table of athletes — the exact scenario of the
paper's Figures 1, 2 and 5 — and prints the intermediate artefacts:

* the BM25 candidate entities of each cell with their linking scores;
* the overlapping scores after the inter-column filter;
* the per-row linking scores and the rows kept by the top-k filter;
* the candidate types of each column and the feature sequence fed to the
  deep-learning component.

Run with::

    python examples/kg_candidate_types.py
"""

from __future__ import annotations

from repro.core import KGCandidateExtractor, Part1Config
from repro.data.table import Column, Table
from repro.kg import KGWorldConfig, build_default_kg
from repro.kg.graph import Predicates


def build_athlete_table(world) -> Table:
    """A table of real KG cricketers/basketball players and their teams."""
    graph = world.graph
    players, teams, countries = [], [], []
    for type_label in ("Cricketer", "Basketball player"):
        for entity_id in world.instances(type_label)[:4]:
            players.append(graph.entity(entity_id).label)
            team = next((t.object for t in graph.outgoing(entity_id)
                         if t.predicate == Predicates.MEMBER_OF), None)
            country = next((t.object for t in graph.outgoing(entity_id)
                            if t.predicate == Predicates.CITIZENSHIP), None)
            teams.append(graph.entity(team).label if team else "")
            countries.append(graph.entity(country).label if country else "")
    return Table(
        table_id="athletes-demo",
        columns=[
            Column(name="player", cells=players, label="Athlete"),
            Column(name="team", cells=teams, label="Sports team"),
            Column(name="country", cells=countries, label="Country"),
        ],
    )


def main() -> None:
    print("building the synthetic knowledge graph ...")
    world = build_default_kg(KGWorldConfig().scaled(0.3))
    table = build_athlete_table(world)
    extractor = KGCandidateExtractor(world.graph, Part1Config(top_k_rows=5))

    print("\n=== step 1: cell mention linking (BM25) ===")
    linked = extractor.link_table(table)
    for col_index, column in enumerate(table.columns):
        mention = column.cells[0]
        links = linked[0][col_index].raw_links[:3]
        rendered = ", ".join(
            f"{world.graph.entity(link.entity_id).label} ({link.score:.2f})" for link in links
        )
        print(f"  {column.name:8s} {mention!r:30s} -> {rendered}")

    print("\n=== step 2: overlap filter and row linking scores ===")
    extractor.apply_overlap_filter(linked)
    row_scores = extractor.row_linking_scores(linked)
    kept = extractor.select_rows(table, row_scores)
    for row_index, score in enumerate(row_scores):
        marker = "*" if row_index in kept else " "
        print(f"  {marker} row {row_index}: linking score {score:8.2f}   {table.row(row_index)}")
    print("  (* = kept by the top-k row filter)")

    print("\n=== step 3: candidate types and feature sequences ===")
    processed = extractor.process_table(table)
    for column, info in zip(table.columns, processed.columns, strict=True):
        print(f"  column {column.name!r} (ground truth: {column.label})")
        print(f"    candidate types : {info.candidate_types}")
        print(f"    feature sequence: {info.feature_sequence[:100]}...")

    stats = extractor.link_statistics([processed])
    print(f"\nlink statistics for this table: {stats}")


if __name__ == "__main__":
    main()
