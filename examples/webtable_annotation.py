#!/usr/bin/env python3
"""Annotate noisy web tables (VizNet-style) and compare KGLink with Doduo.

This example reproduces, at demo scale, the scenario from the paper's
introduction: web tables with coarse semantic types, numeric columns that
cannot be linked to the knowledge graph, and cells that are abbreviations or
codes.  It trains both KGLink and the Doduo baseline on the same corpus and
prints a per-method comparison plus a breakdown on columns without any KG
information (the paper's Table IV scenario).

Run with::

    python examples/webtable_annotation.py
"""

from __future__ import annotations

from collections import defaultdict

from repro.baselines import DoduoAnnotator, PLMBaselineConfig
from repro.core import KGLinkAnnotator, KGLinkConfig
from repro.data import VizNetConfig, VizNetGenerator, stratified_split
from repro.data.metrics import accuracy_score
from repro.kg import KGWorldConfig, build_default_kg


def main() -> None:
    print("building the knowledge graph and a noisy web-table corpus ...")
    world = build_default_kg(KGWorldConfig().scaled(0.4))
    corpus = VizNetGenerator(world, VizNetConfig(num_tables=220)).generate()
    splits = stratified_split(corpus)
    stats = corpus.statistics()
    print(f"  {stats['tables']} tables, {stats['columns']} columns, "
          f"{100 * stats['numeric_column_fraction']:.1f}% numeric columns")

    print("training KGLink ...")
    kglink = KGLinkAnnotator(
        world.graph,
        KGLinkConfig(epochs=8, batch_size=8, learning_rate=1e-3, pretrain_steps=30,
                     top_k_rows=10),
    )
    kglink.fit(splits.train, splits.validation)
    kglink_result = kglink.evaluate(splits.test)

    print("training the Doduo baseline (same serialisation, no KG) ...")
    doduo = DoduoAnnotator(PLMBaselineConfig(epochs=8, batch_size=8, learning_rate=1e-3,
                                             pretrain_steps=30, max_rows=10))
    doduo.fit(splits.train, splits.validation)
    doduo_result = doduo.evaluate(splits.test)

    print("\n=== overall test performance ===")
    for name, result in (("KGLink", kglink_result), ("Doduo", doduo_result)):
        print(f"  {name:8s} accuracy={result.accuracy:6.2f}  weighted F1={result.weighted_f1:6.2f}")

    print("\n=== accuracy by column kind (numeric vs non-numeric) ===")
    for name, annotator in (("KGLink", kglink), ("Doduo", doduo)):
        y_true, y_pred = annotator.predict_corpus(splits.test)
        kinds = []
        for table in splits.test.tables:
            for column in table.columns:
                if column.label is None:
                    continue
                kinds.append("numeric" if column.is_numeric() else "non-numeric")
        grouped = defaultdict(lambda: ([], []))
        for kind, truth, pred in zip(kinds, y_true, y_pred, strict=True):
            grouped[kind][0].append(truth)
            grouped[kind][1].append(pred)
        parts = []
        for kind in ("numeric", "non-numeric"):
            truths, preds = grouped[kind]
            if truths:
                parts.append(f"{kind}: {100 * accuracy_score(truths, preds):.2f} ({len(truths)})")
        print(f"  {name:8s} " + "   ".join(parts))

    print("\nannotating one noisy table with KGLink:")
    table = splits.test.tables[0]
    for column, predicted in zip(table.columns, kglink.annotate(table), strict=True):
        preview = ", ".join(cell for cell in column.cells[:3])
        print(f"  [{predicted:>12s}] truth={column.label:<12s} cells: {preview} ...")


if __name__ == "__main__":
    main()
