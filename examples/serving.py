#!/usr/bin/env python3
"""Serve a trained KGLink system: train → bundle → load → annotate at volume.

The serving-first flow introduced by ``repro.serve``:

1. train once with the research facade (:class:`repro.core.KGLinkAnnotator`);
2. export a serving front door in-process (``annotator.into_service()``);
3. persist a self-contained bundle (``service.save(...)``) — config,
   tokenizer, label vocabulary, model weights, the *compiled* retrieval
   index arrays and a knowledge-graph snapshot;
4. in the serving process, ``AnnotationService.load(bundle_dir)`` — no
   ``KnowledgeGraph`` object, no index rebuild — and answer requests with
   ``annotate`` / ``annotate_batch`` / ``annotate_stream``;
5. watch the per-request telemetry (``service.stats()``);
6. scale out: re-shard the bundled index across a ``ShardedBackend``
   (results stay bitwise-identical) and move the Part-1 prepare stage onto
   a process pool (``processes=N``) — both are configuration, not code;
7. operate under failure: script a deterministic worker crash with
   ``FaultPlan`` / ``FaultyExecutor`` and watch the ``RuntimePolicy``
   (deadlines, retries, circuit breakers) absorb it — ``service.health()``
   reports ``degraded`` while the answers stay bitwise-identical;
8. put the async HTTP gateway (``repro.gateway``) in front and fire mixed
   ``X-Deadline-Ms`` traffic at it: requests with room coalesce into
   shared micro-batches, hopeless budgets are refused with typed 504s,
   and the accounting proves nothing was silently dropped;
9. replicate the tier (``repro.fleet``): two worker *processes* each load
   the same bundle behind one gateway — a supervisor keeps them alive, a
   router picks the least-loaded replica per batch, and a shared results
   cache answers repeat tables from router memory (the second pass of the
   same traffic never touches a replica).

Run with::

    python examples/serving.py
"""

from __future__ import annotations

import asyncio
import dataclasses
import tempfile
import time
from pathlib import Path

from repro.core import KGLinkAnnotator, KGLinkConfig
from repro.data import SemTabConfig, SemTabGenerator, stratified_split
from repro.fleet import FleetRouter, ProcessLauncher, ReplicaSupervisor
from repro.gateway import DEADLINE_HEADER, Gateway, GatewayConfig, HttpConnection
from repro.kg import KGWorldConfig, build_default_kg
from repro.runtime import (
    FaultPlan,
    FaultyExecutor,
    RuntimePolicy,
    create_executor,
    default_worker_count,
)
from repro.serve import AnnotationService, ServiceBundle


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="kglink-serving-demo-"))

    print("1) training KGLink on a synthetic corpus ...")
    world = build_default_kg(KGWorldConfig().scaled(0.35))
    corpus = SemTabGenerator(world, SemTabConfig(num_tables=120)).generate()
    splits = stratified_split(corpus)
    annotator = KGLinkAnnotator(
        world.graph,
        KGLinkConfig(epochs=4, batch_size=8, learning_rate=1e-3, pretrain_steps=20,
                     top_k_rows=10),
    )
    annotator.fit(splits.train, splits.validation)
    print(f"   fitted in {annotator.fit_seconds:.1f}s")

    print("2) exporting the service and saving a self-contained bundle ...")
    bundle_dir = annotator.into_service().save(workdir / "bundle")
    size_kb = sum(f.stat().st_size for f in bundle_dir.iterdir()) / 1024
    print(f"   {bundle_dir} ({size_kb:.0f} KiB: manifest.json, model.npz, "
          "index.npz, graph.json)")

    print("3) loading the bundle in 'the serving process' (no graph, no rebuild) ...")
    start = time.perf_counter()
    service = AnnotationService.load(bundle_dir, max_batch=16)
    print(f"   ready in {time.perf_counter() - start:.2f}s")

    tables = splits.test.tables
    print(f"4) annotating {len(tables)} tables in one batch request ...")
    start = time.perf_counter()
    predictions = service.annotate_batch(tables)
    elapsed = time.perf_counter() - start
    print(f"   {len(tables) / elapsed:.0f} tables/s; "
          f"first table -> {predictions[0]}")

    print("5) the same tables as a stream (Part 1 pipelined against the PLM) ...")
    start = time.perf_counter()
    streamed = list(service.annotate_stream(iter(tables), max_batch=8))
    elapsed = time.perf_counter() - start
    assert streamed == predictions
    print(f"   {len(tables) / elapsed:.0f} tables/s, identical results")

    stats = service.stats()
    print("6) telemetry:")
    print(f"   requests={stats.requests}  tables={stats.tables}")
    print(f"   part1 {stats.part1_seconds * 1e3:.0f} ms total, "
          f"encode {stats.encode_seconds * 1e3:.0f} ms total")
    print(f"   bucket fill {stats.bucket_fill:.0%}  "
          f"cache hit rate {stats.cache_hit_rate:.0%}")

    workers = default_worker_count(cap=4)
    print(f"7) serving at scale: {max(2, workers)}-shard index + "
          f"{workers}-process Part-1 pool (this host grants {workers} "
          "worker(s)) ...")
    bundle = ServiceBundle.load(bundle_dir)
    # The shard plan is configuration: re-shard the same bundle without
    # touching it on disk.  Results stay bitwise-identical to step 4.
    bundle.linker_config = dataclasses.replace(
        bundle.linker_config, num_shards=max(2, workers), executor="process"
    )
    with AnnotationService(bundle, max_batch=16, cache_size=0,
                           processes=workers) as fleet:
        warm = fleet.annotate_batch(tables)  # spin up both pools
        assert warm == predictions, "sharded serving must be bitwise-identical"
        start = time.perf_counter()
        fleet.annotate_batch(tables)  # cold Part-1 every time (cache off)
        elapsed = time.perf_counter() - start
        print(f"   {len(tables) / elapsed:.0f} tables/s cold (full Part 1 + "
              "PLM on every request), identical results")

        start = time.perf_counter()
        streamed = list(fleet.annotate_stream(iter(tables), max_batch=8))
        elapsed = time.perf_counter() - start
        assert streamed == predictions
        print(f"   {len(tables) / elapsed:.0f} tables/s streamed (Part 1 of "
              "batch i+1 overlaps PLM of batch i across processes)")

    print("8) operating under failure: crash a prepare worker on the first "
          "call ...")
    policy = RuntimePolicy(timeout_s=30.0, max_retries=2, breaker_threshold=3)
    # The crash is scripted, deterministic and injected at the dispatch
    # boundary — no real process is killed, yet the service sees exactly
    # what a dead pool worker looks like (BrokenProcessPool).
    plan = FaultPlan(seed=0).crash_worker(times=1)
    chaotic = FaultyExecutor(create_executor("process", max_workers=workers),
                             plan)
    with AnnotationService.load(bundle_dir, max_batch=16, cache_size=0,
                                executor=chaotic, policy=policy) as survivor:
        shaken = survivor.annotate_batch(tables)  # crash -> respawn -> retry
        assert shaken == predictions, "degraded serving must stay identical"
        health = survivor.health()
        stats = survivor.stats()
        print(f"   health={health.status} ({'; '.join(health.reasons)})")
        print(f"   worker_crashes={stats.worker_crashes}  "
              f"retries={stats.retries}  fallbacks={stats.fallbacks}  "
              "— answers identical to step 4")
        survivor.reset_stats()
        assert survivor.annotate_batch(tables) == predictions
        print(f"   after reset_stats(): health={survivor.health().status} "
              "(the crash was transient; the respawned pool is serving)")

    print("9) fronting the service with the async gateway "
          "(mixed-deadline traffic) ...")
    asyncio.run(gateway_demo(bundle_dir, tables, predictions))

    print("10) replicating the tier: 2 worker processes behind one gateway ...")
    launcher = ProcessLauncher(bundle_dir, service_kwargs={"max_batch": 16})
    supervisor = ReplicaSupervisor(launcher, replicas=2)
    supervisor.start()
    router = FleetRouter(supervisor, own_supervisor=True)
    try:
        asyncio.run(fleet_demo(router, tables, predictions))
    finally:
        # Graceful drain: the router drains its dispatches, then the
        # supervisor SIGTERMs both replicas and waits for them to exit.
        router.close()
    assert supervisor.stats()["up"] == 0
    print("    drained: both replicas terminated, accounting balanced")


async def gateway_demo(bundle_dir: Path, tables, predictions) -> None:
    """Step 9: the overload-safe HTTP tier under mixed-deadline traffic."""
    payloads = [
        {"table_id": table.table_id,
         "columns": [{"name": column.name, "cells": list(column.cells)}
                     for column in table.columns]}
        for table in tables
    ]
    service = AnnotationService.load(bundle_dir, max_batch=16)
    # default_deadline_ms=0 disables the policy fallback: only the header
    # counts, so the demo controls every request's budget explicitly.
    async with Gateway(service, GatewayConfig(
        port=0, max_wait_ms=5.0, default_deadline_ms=0.0,
    )) as gateway:
        print(f"   listening on 127.0.0.1:{gateway.port} "
              "(POST /annotate, GET /healthz /stats /metrics)")

        async def fire(index: int) -> tuple[int, float]:
            # Three of four requests get a generous budget; the fourth gets
            # a hopeless one the serving path cannot possibly meet.
            budget_ms = 0.5 if index % 4 == 3 else 30_000.0
            async with await HttpConnection.open(
                "127.0.0.1", gateway.port
            ) as connection:
                start = time.perf_counter()
                response = await connection.request(
                    "POST", "/annotate",
                    json_body=payloads[index % len(payloads)],
                    headers={DEADLINE_HEADER: f"{budget_ms:g}"},
                )
            return response.status, (time.perf_counter() - start) * 1e3

        outcomes = await asyncio.gather(*[fire(index) for index in range(32)])
        statuses = [status for status, _ in outcomes]
        ok_ms = sorted(ms for status, ms in outcomes if status == 200)
        assert all(status in (200, 503, 504) for status in statuses), statuses
        assert 200 in statuses and 504 in statuses
        summary = "  ".join(
            f"{status}×{statuses.count(status)}"
            for status in sorted(set(statuses))
        )
        print(f"   32 concurrent requests -> {summary}")
        print(f"   successful p50 {ok_ms[len(ok_ms) // 2]:.0f} ms "
              f"(max {ok_ms[-1]:.0f} ms); hopeless 0.5 ms budgets were "
              "refused with typed 504s, not left to time out")

        stats = gateway.stats()
        answered = (stats["completed"] + stats["errors"]
                    + stats["rejected_draining"] + stats["expired_at_admission"]
                    + stats["expired_in_flight"])
        assert answered == stats["requests"], stats
        print(f"   accounting: {stats['requests']} requests = "
              f"{stats['completed']} completed + "
              f"{stats['errors'] + stats['expired_at_admission'] + stats['expired_in_flight']} "
              f"typed errors — zero silent drops; mean micro-batch "
              f"{stats['mean_batch_size']:.1f} tables")
    # Gateway.__aexit__ drained in flight and (close_service left False)
    # the service is still ours to close.
    service.close()


async def fleet_demo(router: FleetRouter, tables, predictions) -> None:
    """Step 10: mixed-deadline traffic at a 2-replica fleet, then the same
    traffic again so the shared results cache answers from router memory."""
    payloads = [
        {"table_id": table.table_id,
         "columns": [{"name": column.name, "cells": list(column.cells)}
                     for column in table.columns]}
        for table in tables
    ]
    async with Gateway(router, GatewayConfig(
        port=0, max_wait_ms=5.0, default_deadline_ms=0.0,
    )) as gateway:
        members = router.health().replicas
        print(f"   listening on 127.0.0.1:{gateway.port}; replicas: "
              + ", ".join(sorted(members)))

        async def fire(index: int, budget_ms: float) -> tuple[int, float, int]:
            async with await HttpConnection.open(
                "127.0.0.1", gateway.port
            ) as connection:
                start = time.perf_counter()
                response = await connection.request(
                    "POST", "/annotate",
                    json_body=payloads[index % len(payloads)],
                    headers={DEADLINE_HEADER: f"{budget_ms:g}"},
                )
            if response.status == 200:
                got = response.json()["predictions"]
                want = predictions[index % len(payloads)]
                assert got == want, "fleet answers must be bitwise-identical"
            return response.status, (time.perf_counter() - start) * 1e3, index

        async def wave() -> list[tuple[int, float, int]]:
            # The same mix as step 9: three generous budgets, one hopeless.
            return await asyncio.gather(*[
                fire(index, 0.5 if index % 4 == 3 else 30_000.0)
                for index in range(32)
            ])

        first = await wave()
        second = await wave()
        for label, outcomes in (("cold", first), ("warm", second)):
            statuses = [status for status, _, _ in outcomes]
            ok_ms = sorted(ms for status, ms, _ in outcomes if status == 200)
            assert all(status in (200, 503, 504) for status in statuses)
            summary = "  ".join(
                f"{status}×{statuses.count(status)}"
                for status in sorted(set(statuses))
            )
            print(f"   {label} pass: {summary}; successful p50 "
                  f"{ok_ms[len(ok_ms) // 2]:.1f} ms")

        stats = router.stats()
        cache = stats.results_cache
        print(f"   routing: {stats.dispatches} replica dispatches for "
              f"{stats.requests} requests; shared cache "
              f"{cache.get('hits', 0)} hits / {cache.get('misses', 0)} misses"
              f" / {cache.get('coalesced', 0)} coalesced — the warm pass "
              "was answered from router memory")
        fleet = stats.supervisor
        print(f"   supervisor: spawned={fleet.get('spawned', 0)} "
              f"up={fleet.get('up', 0)} restarts={fleet.get('restarts', 0)} "
              f"(spawned == replicas + restarts)")
        assert router.health().status == "healthy"


if __name__ == "__main__":
    main()
