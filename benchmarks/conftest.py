"""Shared fixtures for the benchmark harness.

Every experiment benchmark runs against the ``smoke`` profile so the whole
harness completes in minutes on CPU; the numbers recorded in EXPERIMENTS.md
come from the larger ``default`` profile (``python -m repro.experiments all
--profile default``).  Fitted models are cached inside the shared resources,
so benchmarks that reuse the same models (Table I → Figure 7 → Table IV) do
not refit them.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import get_profile, load_resources


@pytest.fixture(scope="session")
def smoke_profile():
    return get_profile("smoke")


@pytest.fixture(scope="session")
def resources(smoke_profile):
    return load_resources(smoke_profile)
