"""Benchmark regenerating Table III (dataset / KG link statistics)."""

from __future__ import annotations

from repro.experiments import table3


def test_table3_link_statistics(benchmark, resources, smoke_profile):
    result = benchmark.pedantic(
        lambda: table3.run(resources, smoke_profile), rounds=1, iterations=1
    )
    print()
    print(result.render())
    semtab = next(row for row in result.rows if row["dataset"] == "semtab")
    viznet = next(row for row in result.rows if row["dataset"] == "viznet")
    # The structural facts of the paper's Table III.
    assert semtab["numeric_columns"] == 0
    assert viznet["numeric_columns"] > 0
    assert viznet["without_ct_pct"] >= semtab["without_ct_pct"]
