"""Benchmark regenerating Table II (ablation study) at smoke scale."""

from __future__ import annotations

from repro.experiments import table2


def test_table2_ablation(benchmark, resources, smoke_profile):
    result = benchmark.pedantic(
        lambda: table2.run(resources, smoke_profile), rounds=1, iterations=1
    )
    print()
    print(result.render())
    variants = {row["variant"] for row in result.rows}
    assert variants == {"KGLink", "KGLink w/o msk", "KGLink w/o ct", "KGLink w/o fv",
                        "KGLink DeBERTa"}
    for row in result.rows:
        assert 0.0 <= row["semtab_accuracy"] <= 100.0
        assert 0.0 <= row["viznet_accuracy"] <= 100.0
