"""Retrieval-engine benchmark: vectorized BM25 search and batched linking.

Builds a synthetic corpus of ``--n-docs`` documents (default 12k, matching the
scale at which the paper resorts to Elasticsearch), then times

* index build + CSR compilation (``finalize``),
* the vectorized ``BM25Index.search`` path,
* the seed scalar path (candidate set from postings, one ``score()`` call per
  candidate) as the baseline the speedup is measured against,
* float32 postings (the default since PR 5) against the float64 index:
  per-query recall@10 parity and search latency,
* sharded search: the same query stream through a ``ShardedBackend`` whose
  shards are served by a process pool, vs the unsharded index,
* resilience overhead: the sharded path under the default ``RuntimePolicy``
  (deadlines, retries, circuit breakers — all idle) vs the bare
  ``policy=None`` fan-out on the same serial executor, gating the wrappers'
  fault-free cost,
* sequential ``EntityLinker.link`` vs ``EntityLinker.link_batch`` throughput
  on a mention stream with realistic duplication,
* serving throughput: a tiny trained system exported through
  ``KGLinkAnnotator.into_service()`` and hit with the same tables as a
  one-table ``annotate()`` loop vs one ``annotate_batch()`` request (the
  Part-1 cache is pre-warmed, so the ratio isolates Part-2 micro-batching),
  plus a cold-cache ``annotate_batch`` with the Part-1 prepare stage on a
  process pool vs serial in-process preparation.

The pool-backed ratios (``sharded_search_speedup``,
``process_pool_annotate_speedup``) depend on how many cores the host grants;
the worker counts used are recorded next to the numbers.  On a single-core
box both ratios hover at or below 1.0 — the benchmark then documents the
fan-out overhead rather than a win, and the CI gate simply holds future PRs
to whatever the committed baseline machine achieved.

Results are written as JSON (``scripts/run_benchmarks.sh`` commits them to
``BENCH_retrieval.json``) so the performance trajectory is tracked per PR.

Usage::

    PYTHONPATH=src python benchmarks/bench_retrieval.py --output BENCH_retrieval.json
"""

from __future__ import annotations

import argparse
import json
import time
from datetime import datetime, timezone

import numpy as np

from repro.kg.backends import BM25Index, SearchHit, ShardedBackend, reference_search
from repro.kg.graph import KnowledgeGraph
from repro.kg.linker import EntityLinker, LinkerConfig
from repro.runtime import ProcessExecutor, default_worker_count


class _SeedSearchAdapter:
    """Duck-typed index exposing the seed's scalar search to an EntityLinker."""

    def __init__(self, index: BM25Index):
        self._index = index

    def search(self, query: str, top_k: int) -> list[SearchHit]:
        return reference_search(self._index, query, top_k)


def build_corpus(n_docs: int, vocab_size: int, seed: int) -> list[tuple[str, str]]:
    """Synthetic entity documents with a Zipf-like term distribution."""
    rng = np.random.default_rng(seed)
    vocab = np.asarray([f"term{i:05d}" for i in range(vocab_size)])
    # Zipf-ish ranks: low indices are frequent, the tail is rare.
    ranks = np.minimum(rng.zipf(1.3, size=n_docs * 10) - 1, vocab_size - 1)
    documents = []
    cursor = 0
    for i in range(n_docs):
        length = int(rng.integers(4, 14))
        words = vocab[ranks[cursor:cursor + length]]
        cursor += length
        documents.append((f"ent{i:06d}", " ".join(words)))
    return documents


def make_queries(documents: list[tuple[str, str]], n_queries: int, seed: int) -> list[str]:
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(documents), size=n_queries)
    queries = []
    for pick in picks:
        words = documents[int(pick)][1].split()
        n_words = min(len(words), int(rng.integers(1, 4)))
        queries.append(" ".join(words[:n_words]))
    return queries


def measure_float32(index: BM25Index, documents: list[tuple[str, str]],
                    queries: list[str], top_k: int,
                    f64_hits: list[list[SearchHit]]) -> dict:
    """Float32-postings parity and latency against the float64 index."""
    f32 = BM25Index.build(documents, dtype=np.float32)
    f32.finalize()
    start = time.perf_counter()
    f32_hits = f32.search_batch(queries, top_k=top_k)
    f32_seconds = time.perf_counter() - start
    overlaps = []
    for fast, exact in zip(f32_hits, f64_hits, strict=True):
        want = {hit.doc_id for hit in exact}
        got = {hit.doc_id for hit in fast}
        overlaps.append(len(want & got) / len(want) if want else 1.0)
    return {
        "float32_search_ms_per_query": round(f32_seconds / len(queries) * 1e3, 4),
        "float32_recall_at_10": round(float(np.mean(overlaps)), 6),
        "float32_postings_bytes": int(f32._posting_impacts.nbytes),
        "float64_postings_bytes": int(index._posting_impacts.nbytes),
    }


def measure_sharded(index: BM25Index, queries: list[str], top_k: int,
                    num_shards: int, workers: int) -> dict:
    """Sharded ``search_batch`` on a process pool vs the unsharded index."""
    executor = ProcessExecutor(max_workers=workers)
    sharded = ShardedBackend(index, num_shards=num_shards, executor=executor)
    try:
        sharded_hits = sharded.search_batch(queries, top_k=top_k)  # warm pool
        flat_seconds = float("inf")
        sharded_seconds = float("inf")
        for _ in range(3):  # best-of-3 per path to damp scheduler noise
            start = time.perf_counter()
            flat_hits = index.search_batch(queries, top_k=top_k)
            flat_seconds = min(flat_seconds, time.perf_counter() - start)

            start = time.perf_counter()
            sharded_hits = sharded.search_batch(queries, top_k=top_k)
            sharded_seconds = min(sharded_seconds, time.perf_counter() - start)
        assert sharded_hits == flat_hits, "sharded search diverged from unsharded"
    finally:
        sharded.close()
    return {
        "num_shards": num_shards,
        "shard_workers": workers,
        "sharded_search_ms_per_query": round(sharded_seconds / len(queries) * 1e3, 4),
        "sharded_search_speedup": round(flat_seconds / sharded_seconds, 2),
    }


def measure_resilience_overhead(index: BM25Index, queries: list[str],
                                top_k: int, num_shards: int = 2,
                                repeats: int = 5) -> dict:
    """Fault-free cost of the resilience wrappers on the sharded search path.

    Two ``ShardedBackend``s over the same index and the same serial executor:
    one bare (``policy=None``) and one under the default ``RuntimePolicy``
    (per-shard deadlines, retry accounting, circuit breakers).  Same process,
    same arrays, zero faults — the ratio isolates pure wrapper overhead, and
    the CI gate (``serving.resilience_overhead``) holds it near 1.0.
    """
    from repro.runtime import SerialExecutor

    bare = ShardedBackend(index, num_shards=num_shards,
                          executor=SerialExecutor(), policy=None)
    resilient = ShardedBackend(index, num_shards=num_shards,
                               executor=SerialExecutor())
    try:
        bare_hits = bare.search_batch(queries, top_k=top_k)  # warm both paths
        assert resilient.search_batch(queries, top_k=top_k) == bare_hits, (
            "resilience wrappers changed search results"
        )
        bare_seconds = float("inf")
        resilient_seconds = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            bare.search_batch(queries, top_k=top_k)
            bare_seconds = min(bare_seconds, time.perf_counter() - start)

            start = time.perf_counter()
            resilient.search_batch(queries, top_k=top_k)
            resilient_seconds = min(resilient_seconds, time.perf_counter() - start)
    finally:
        bare.close()
        resilient.close()
    return {
        "bare_serial_search_ms_per_query": round(
            bare_seconds / len(queries) * 1e3, 4),
        "resilient_serial_search_ms_per_query": round(
            resilient_seconds / len(queries) * 1e3, 4),
        "resilience_overhead": round(resilient_seconds / bare_seconds, 4),
    }


def run_serving(seed: int, n_tables: int = 64, max_batch: int = 16) -> dict:
    """Serving throughput: ``annotate_batch`` vs an ``annotate()`` loop."""
    from repro.core.annotator import KGLinkAnnotator, KGLinkConfig
    from repro.data.corpus import TableCorpus
    from repro.data.semtab import SemTabConfig, SemTabGenerator
    from repro.kg.builder import KGWorldConfig, build_default_kg

    world = build_default_kg(KGWorldConfig(seed=seed + 5).scaled(0.25))
    corpus = SemTabGenerator(
        world, SemTabConfig(num_tables=16 + n_tables, seed=seed + 9)
    ).generate()
    train = TableCorpus("train", corpus.tables[:16], corpus.label_vocabulary)
    serve_tables = corpus.tables[16 : 16 + n_tables]

    config = KGLinkConfig(
        epochs=1, batch_size=8, learning_rate=1e-3, pretrain_steps=4,
        hidden_size=32, num_layers=2, num_heads=2, intermediate_size=48,
        top_k_rows=6, max_tokens_per_column=12, vocab_size=1200,
        max_position_embeddings=160, max_feature_tokens=10, seed=seed,
    )
    annotator = KGLinkAnnotator(world.graph, config)
    annotator.fit(train)
    service = annotator.into_service(max_batch=max_batch)

    # Warm the Part-1 cache: both request shapes then measure the Part-2
    # micro-batching path (Part-1 cost is identical per table either way).
    warm = service.annotate_batch(serve_tables)

    loop_seconds = float("inf")
    batch_seconds = float("inf")
    for _ in range(3):  # best-of-3 per path to damp scheduler noise
        start = time.perf_counter()
        looped = [service.annotate(table) for table in serve_tables]
        loop_seconds = min(loop_seconds, time.perf_counter() - start)

        start = time.perf_counter()
        batched = service.annotate_batch(serve_tables)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)

        assert batched == warm and looped == warm, "serving paths diverged"
    loop_rate = len(serve_tables) / loop_seconds
    batch_rate = len(serve_tables) / batch_seconds
    stats = service.stats()

    # Cold-cache annotate_batch with the Part-1 prepare stage on a process
    # pool vs serial in-process preparation.  cache_size=0 forces the full
    # Part-1 + serialisation work on every request, which is exactly the
    # stage the pool distributes.  Capped at 2 workers so the CI-gated ratio
    # varies as little as possible between hosts with different core counts
    # (any machine with >= 2 free cores measures roughly the same thing).
    workers = default_worker_count(cap=2)
    serial_service = annotator.into_service(max_batch=max_batch, cache_size=0)
    pool_service = annotator.into_service(
        max_batch=max_batch, cache_size=0, processes=workers
    )
    with pool_service:
        pooled = pool_service.annotate_batch(serve_tables)  # warm the pool
        serial_seconds = float("inf")
        pool_seconds = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            serial_annotated = serial_service.annotate_batch(serve_tables)
            serial_seconds = min(serial_seconds, time.perf_counter() - start)

            start = time.perf_counter()
            pooled = pool_service.annotate_batch(serve_tables)
            pool_seconds = min(pool_seconds, time.perf_counter() - start)
        assert pooled == warm and serial_annotated == warm, \
            "process-pool serving diverged"

    return {
        "n_tables": len(serve_tables),
        "max_batch": max_batch,
        "tables_per_second_loop": round(loop_rate, 1),
        "tables_per_second_batch": round(batch_rate, 1),
        "batch_vs_loop_speedup": round(batch_rate / loop_rate, 2),
        "bucket_fill": round(stats.bucket_fill, 3),
        "part1_cache_hit_rate": round(stats.cache_hit_rate, 3),
        "prepare_workers": workers,
        "tables_per_second_cold_serial": round(
            len(serve_tables) / serial_seconds, 1
        ),
        "tables_per_second_cold_pool": round(len(serve_tables) / pool_seconds, 1),
        "process_pool_annotate_speedup": round(serial_seconds / pool_seconds, 2),
    }


def run(n_docs: int, vocab_size: int, n_queries: int, n_scalar_queries: int,
        top_k: int, seed: int) -> dict:
    documents = build_corpus(n_docs, vocab_size, seed)

    # The float64 index is the oracle-comparable configuration (bitwise equal
    # to the scalar reference); the float32 default is measured separately.
    start = time.perf_counter()
    index = BM25Index.build(documents, dtype=np.float64)
    build_seconds = time.perf_counter() - start

    start = time.perf_counter()
    index.finalize()
    finalize_seconds = time.perf_counter() - start

    queries = make_queries(documents, n_queries, seed + 1)

    start = time.perf_counter()
    vector_hits = index.search_batch(queries, top_k=top_k)
    vector_seconds = time.perf_counter() - start

    scalar_queries = queries[:n_scalar_queries]
    start = time.perf_counter()
    scalar_hits = [reference_search(index, q, top_k) for q in scalar_queries]
    scalar_seconds = time.perf_counter() - start

    # Sanity: both paths agree on the sampled prefix.
    for vec, ref in zip(vector_hits, scalar_hits, strict=True):
        assert [h.doc_id for h in vec] == [h.doc_id for h in ref], "parity violation"

    vector_per_query = vector_seconds / len(queries)
    scalar_per_query = scalar_seconds / len(scalar_queries)

    float32_metrics = measure_float32(index, documents, queries, top_k, vector_hits)
    # Capped at 2 workers: see the prepare-pool note in run_serving — the
    # gated ratio should measure the fan-out plumbing, not the host's cores.
    shard_workers = default_worker_count(cap=2)
    sharded_metrics = measure_sharded(
        index, queries, top_k,
        num_shards=max(2, shard_workers), workers=shard_workers,
    )
    resilience_metrics = measure_resilience_overhead(index, queries, top_k)

    # Linker throughput on a mention stream with heavy duplication (the same
    # entities recur across table cells).  Fresh linkers so caches are cold.
    rng = np.random.default_rng(seed + 2)
    unique_mentions = [documents[int(i)][1].rsplit(" ", 1)[0][:40]
                       for i in rng.integers(0, len(documents), size=500)]
    mentions = [unique_mentions[int(i)] for i in rng.integers(0, 500, size=4000)]
    config = LinkerConfig(max_candidates=top_k)

    sequential_linker = EntityLinker(KnowledgeGraph(), config=config, index=index)
    start = time.perf_counter()
    sequential = [sequential_linker.link(m) for m in mentions]
    sequential_seconds = time.perf_counter() - start

    batch_linker = EntityLinker(KnowledgeGraph(), config=config, index=index)
    start = time.perf_counter()
    batched = batch_linker.link_batch(mentions)
    batch_seconds = time.perf_counter() - start
    assert batched == sequential, "link_batch diverged from sequential link()"

    # Seed baseline: the same linker flow but with the scalar search the seed
    # shipped, on a smaller slice (it is ~40x slower per unique mention).
    seed_mentions = mentions[:800]
    seed_linker = EntityLinker(
        KnowledgeGraph(), config=config, index=_SeedSearchAdapter(index)
    )
    start = time.perf_counter()
    for mention in seed_mentions:
        seed_linker.link(mention)
    seed_seconds = time.perf_counter() - start
    seed_rate = len(seed_mentions) / seed_seconds
    batch_rate = len(mentions) / batch_seconds

    return {
        "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "corpus": {
            "n_docs": n_docs,
            "vocab_size": vocab_size,
            "n_queries": len(queries),
            "n_scalar_queries": len(scalar_queries),
            "top_k": top_k,
            "seed": seed,
        },
        "bm25": {
            "build_seconds": round(build_seconds, 4),
            "finalize_seconds": round(finalize_seconds, 4),
            "vector_search_ms_per_query": round(vector_per_query * 1e3, 4),
            "scalar_search_ms_per_query": round(scalar_per_query * 1e3, 4),
            "search_speedup": round(scalar_per_query / vector_per_query, 2),
            **float32_metrics,
        },
        "linker": {
            "n_mentions": len(mentions),
            "n_unique_mentions": len(set(mentions)),
            "sequential_mentions_per_second": round(len(mentions) / sequential_seconds, 1),
            "batch_mentions_per_second": round(batch_rate, 1),
            "batch_vs_sequential_speedup": round(sequential_seconds / batch_seconds, 2),
            "seed_engine_mentions_per_second": round(seed_rate, 1),
            "engine_speedup": round(batch_rate / seed_rate, 2),
        },
        "serving": {**sharded_metrics, **resilience_metrics, **run_serving(seed)},
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-docs", type=int, default=12_000)
    parser.add_argument("--vocab-size", type=int, default=2_000)
    parser.add_argument("--n-queries", type=int, default=400)
    parser.add_argument("--n-scalar-queries", type=int, default=60)
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=str, default=None,
                        help="write results as JSON to this path")
    args = parser.parse_args()

    results = run(args.n_docs, args.vocab_size, args.n_queries,
                  args.n_scalar_queries, args.top_k, args.seed)
    payload = json.dumps(results, indent=2)
    print(payload)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(payload + "\n")


if __name__ == "__main__":
    main()
