"""Retrieval-engine benchmark: vectorized BM25 search and batched linking.

Builds a synthetic corpus of ``--n-docs`` documents (default 12k, matching the
scale at which the paper resorts to Elasticsearch), then times

* index build + CSR compilation (``finalize``),
* the vectorized ``BM25Index.search`` path,
* the seed scalar path (candidate set from postings, one ``score()`` call per
  candidate) as the baseline the speedup is measured against,
* sequential ``EntityLinker.link`` vs ``EntityLinker.link_batch`` throughput
  on a mention stream with realistic duplication,
* serving throughput: a tiny trained system exported through
  ``KGLinkAnnotator.into_service()`` and hit with the same tables as a
  one-table ``annotate()`` loop vs one ``annotate_batch()`` request (the
  Part-1 cache is pre-warmed, so the ratio isolates Part-2 micro-batching).

Results are written as JSON (``scripts/run_benchmarks.sh`` commits them to
``BENCH_retrieval.json``) so the performance trajectory is tracked per PR.

Usage::

    PYTHONPATH=src python benchmarks/bench_retrieval.py --output BENCH_retrieval.json
"""

from __future__ import annotations

import argparse
import json
import time
from datetime import datetime, timezone

import numpy as np

from repro.kg.backends import BM25Index, SearchHit, reference_search
from repro.kg.graph import KnowledgeGraph
from repro.kg.linker import EntityLinker, LinkerConfig


class _SeedSearchAdapter:
    """Duck-typed index exposing the seed's scalar search to an EntityLinker."""

    def __init__(self, index: BM25Index):
        self._index = index

    def search(self, query: str, top_k: int) -> list[SearchHit]:
        return reference_search(self._index, query, top_k)


def build_corpus(n_docs: int, vocab_size: int, seed: int) -> list[tuple[str, str]]:
    """Synthetic entity documents with a Zipf-like term distribution."""
    rng = np.random.default_rng(seed)
    vocab = np.asarray([f"term{i:05d}" for i in range(vocab_size)])
    # Zipf-ish ranks: low indices are frequent, the tail is rare.
    ranks = np.minimum(rng.zipf(1.3, size=n_docs * 10) - 1, vocab_size - 1)
    documents = []
    cursor = 0
    for i in range(n_docs):
        length = int(rng.integers(4, 14))
        words = vocab[ranks[cursor:cursor + length]]
        cursor += length
        documents.append((f"ent{i:06d}", " ".join(words)))
    return documents


def make_queries(documents: list[tuple[str, str]], n_queries: int, seed: int) -> list[str]:
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(documents), size=n_queries)
    queries = []
    for pick in picks:
        words = documents[int(pick)][1].split()
        n_words = min(len(words), int(rng.integers(1, 4)))
        queries.append(" ".join(words[:n_words]))
    return queries


def run_serving(seed: int, n_tables: int = 64, max_batch: int = 16) -> dict:
    """Serving throughput: ``annotate_batch`` vs an ``annotate()`` loop."""
    from repro.core.annotator import KGLinkAnnotator, KGLinkConfig
    from repro.data.corpus import TableCorpus
    from repro.data.semtab import SemTabConfig, SemTabGenerator
    from repro.kg.builder import KGWorldConfig, build_default_kg

    world = build_default_kg(KGWorldConfig(seed=seed + 5).scaled(0.25))
    corpus = SemTabGenerator(
        world, SemTabConfig(num_tables=16 + n_tables, seed=seed + 9)
    ).generate()
    train = TableCorpus("train", corpus.tables[:16], corpus.label_vocabulary)
    serve_tables = corpus.tables[16 : 16 + n_tables]

    config = KGLinkConfig(
        epochs=1, batch_size=8, learning_rate=1e-3, pretrain_steps=4,
        hidden_size=32, num_layers=2, num_heads=2, intermediate_size=48,
        top_k_rows=6, max_tokens_per_column=12, vocab_size=1200,
        max_position_embeddings=160, max_feature_tokens=10, seed=seed,
    )
    annotator = KGLinkAnnotator(world.graph, config)
    annotator.fit(train)
    service = annotator.into_service(max_batch=max_batch)

    # Warm the Part-1 cache: both request shapes then measure the Part-2
    # micro-batching path (Part-1 cost is identical per table either way).
    warm = service.annotate_batch(serve_tables)

    loop_seconds = float("inf")
    batch_seconds = float("inf")
    for _ in range(3):  # best-of-3 per path to damp scheduler noise
        start = time.perf_counter()
        looped = [service.annotate(table) for table in serve_tables]
        loop_seconds = min(loop_seconds, time.perf_counter() - start)

        start = time.perf_counter()
        batched = service.annotate_batch(serve_tables)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)

        assert batched == warm and looped == warm, "serving paths diverged"
    loop_rate = len(serve_tables) / loop_seconds
    batch_rate = len(serve_tables) / batch_seconds
    stats = service.stats()
    return {
        "n_tables": len(serve_tables),
        "max_batch": max_batch,
        "tables_per_second_loop": round(loop_rate, 1),
        "tables_per_second_batch": round(batch_rate, 1),
        "batch_vs_loop_speedup": round(batch_rate / loop_rate, 2),
        "bucket_fill": round(stats.bucket_fill, 3),
        "part1_cache_hit_rate": round(stats.cache_hit_rate, 3),
    }


def run(n_docs: int, vocab_size: int, n_queries: int, n_scalar_queries: int,
        top_k: int, seed: int) -> dict:
    documents = build_corpus(n_docs, vocab_size, seed)

    start = time.perf_counter()
    index = BM25Index.build(documents)
    build_seconds = time.perf_counter() - start

    start = time.perf_counter()
    index.finalize()
    finalize_seconds = time.perf_counter() - start

    queries = make_queries(documents, n_queries, seed + 1)

    start = time.perf_counter()
    vector_hits = index.search_batch(queries, top_k=top_k)
    vector_seconds = time.perf_counter() - start

    scalar_queries = queries[:n_scalar_queries]
    start = time.perf_counter()
    scalar_hits = [reference_search(index, q, top_k) for q in scalar_queries]
    scalar_seconds = time.perf_counter() - start

    # Sanity: both paths agree on the sampled prefix.
    for vec, ref in zip(vector_hits, scalar_hits):
        assert [h.doc_id for h in vec] == [h.doc_id for h in ref], "parity violation"

    vector_per_query = vector_seconds / len(queries)
    scalar_per_query = scalar_seconds / len(scalar_queries)

    # Linker throughput on a mention stream with heavy duplication (the same
    # entities recur across table cells).  Fresh linkers so caches are cold.
    rng = np.random.default_rng(seed + 2)
    unique_mentions = [documents[int(i)][1].rsplit(" ", 1)[0][:40]
                       for i in rng.integers(0, len(documents), size=500)]
    mentions = [unique_mentions[int(i)] for i in rng.integers(0, 500, size=4000)]
    config = LinkerConfig(max_candidates=top_k)

    sequential_linker = EntityLinker(KnowledgeGraph(), config=config, index=index)
    start = time.perf_counter()
    sequential = [sequential_linker.link(m) for m in mentions]
    sequential_seconds = time.perf_counter() - start

    batch_linker = EntityLinker(KnowledgeGraph(), config=config, index=index)
    start = time.perf_counter()
    batched = batch_linker.link_batch(mentions)
    batch_seconds = time.perf_counter() - start
    assert batched == sequential, "link_batch diverged from sequential link()"

    # Seed baseline: the same linker flow but with the scalar search the seed
    # shipped, on a smaller slice (it is ~40x slower per unique mention).
    seed_mentions = mentions[:800]
    seed_linker = EntityLinker(
        KnowledgeGraph(), config=config, index=_SeedSearchAdapter(index)
    )
    start = time.perf_counter()
    for mention in seed_mentions:
        seed_linker.link(mention)
    seed_seconds = time.perf_counter() - start
    seed_rate = len(seed_mentions) / seed_seconds
    batch_rate = len(mentions) / batch_seconds

    return {
        "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "corpus": {
            "n_docs": n_docs,
            "vocab_size": vocab_size,
            "n_queries": len(queries),
            "n_scalar_queries": len(scalar_queries),
            "top_k": top_k,
            "seed": seed,
        },
        "bm25": {
            "build_seconds": round(build_seconds, 4),
            "finalize_seconds": round(finalize_seconds, 4),
            "vector_search_ms_per_query": round(vector_per_query * 1e3, 4),
            "scalar_search_ms_per_query": round(scalar_per_query * 1e3, 4),
            "search_speedup": round(scalar_per_query / vector_per_query, 2),
        },
        "linker": {
            "n_mentions": len(mentions),
            "n_unique_mentions": len(set(mentions)),
            "sequential_mentions_per_second": round(len(mentions) / sequential_seconds, 1),
            "batch_mentions_per_second": round(batch_rate, 1),
            "batch_vs_sequential_speedup": round(sequential_seconds / batch_seconds, 2),
            "seed_engine_mentions_per_second": round(seed_rate, 1),
            "engine_speedup": round(batch_rate / seed_rate, 2),
        },
        "serving": run_serving(seed),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-docs", type=int, default=12_000)
    parser.add_argument("--vocab-size", type=int, default=2_000)
    parser.add_argument("--n-queries", type=int, default=400)
    parser.add_argument("--n-scalar-queries", type=int, default=60)
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=str, default=None,
                        help="write results as JSON to this path")
    args = parser.parse_args()

    results = run(args.n_docs, args.vocab_size, args.n_queries,
                  args.n_scalar_queries, args.top_k, args.seed)
    payload = json.dumps(results, indent=2)
    print(payload)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(payload + "\n")


if __name__ == "__main__":
    main()
