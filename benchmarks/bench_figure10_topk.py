"""Benchmark regenerating Figure 10 (effect of the row-filter size k)."""

from __future__ import annotations

from repro.experiments import figure10


def test_figure10_topk_rows(benchmark, resources, smoke_profile):
    result = benchmark.pedantic(
        lambda: figure10.run(resources, smoke_profile, k_values=(4, None)),
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    assert {row["dataset"] for row in result.rows} == {"semtab", "viznet"}
    assert {row["k"] for row in result.rows} == {4, "all"}
    assert all(row["train_seconds"] > 0 for row in result.rows)
