"""Benchmark regenerating Table V (row-filter mechanism comparison)."""

from __future__ import annotations

from repro.experiments import table5


def test_table5_row_filter(benchmark, resources, smoke_profile):
    result = benchmark.pedantic(
        lambda: table5.run(resources, smoke_profile), rounds=1, iterations=1
    )
    print()
    print(result.render())
    filters = {row["filter"] for row in result.rows}
    assert filters == {"our top-k row filter", "original top-k rows"}
