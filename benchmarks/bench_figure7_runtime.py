"""Benchmark regenerating Figure 7 (training / inference time per method)."""

from __future__ import annotations

from repro.experiments import figure7


def test_figure7_runtime(benchmark, resources, smoke_profile):
    result = benchmark.pedantic(
        lambda: figure7.run(resources, smoke_profile), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert len(result.rows) == 7
    assert all(row["train_seconds"] >= 0.0 for row in result.rows)
    # MTab never trains a neural model: it must be among the cheapest methods.
    times = {row["model"]: row["train_seconds"] for row in result.rows}
    assert times["MTab"] <= max(times.values())
