"""Benchmark regenerating Table I (main results) at smoke scale.

The benchmark fits and evaluates every method of the paper's Table I on both
synthetic corpora and prints the measured rows next to the paper's values.
"""

from __future__ import annotations

from repro.experiments import table1


def test_table1_main_results(benchmark, resources, smoke_profile):
    result = benchmark.pedantic(
        lambda: table1.run(resources, smoke_profile), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert len(result.rows) == 14
    kglink_rows = [row for row in result.rows if row["model"] == "KGLink"]
    assert all(0.0 <= row["accuracy"] <= 100.0 for row in result.rows)
    assert len(kglink_rows) == 2
