"""PLM encoder benchmark: fused attention, packed QKV, cached relative bias.

Times the MiniBERT/MiniDeBERTa forward pass and one fine-tuning step at the
same scale as ``bench_components.py`` (batch 8, sequence 160, hidden 64, two
layers), comparing the fused :func:`scaled_dot_product_attention` node against
the unfused chain of primitive ops kept as the parity oracle.

Results are written as JSON (``scripts/run_benchmarks.sh`` commits them to
``BENCH_plm.json``) so the PLM's performance trajectory is tracked per PR,
alongside ``BENCH_retrieval.json`` for the retrieval engine.

Usage::

    PYTHONPATH=src python benchmarks/bench_plm.py --output BENCH_plm.json
"""

from __future__ import annotations

import argparse
import json
import time
from datetime import datetime, timezone

import numpy as np

from repro.core.model import KGLinkModel
from repro.nn import functional as F
from repro.nn.optim import AdamW
from repro.nn.tensor import FLOAT64_POLICY, dtype_policy, get_dtype_policy, no_grad
from repro.plm.config import PLMConfig
from repro.plm.model import MiniBERT, MiniDeBERTa


def _set_fused(encoder: MiniBERT, fused: bool) -> None:
    for layer in encoder.layers:
        layer.attention.fused = fused


def _median_ms(fn, repeats: int, warmup: int = 3) -> float:
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times) * 1e3)


def _measure(config: PLMConfig, batch_size: int, seq_len: int, repeats: int,
             seed: int) -> dict[str, float]:
    """Forward / inference / train-step timings under the ACTIVE dtype policy."""
    rng = np.random.default_rng(seed)
    token_ids = rng.integers(0, config.vocab_size, size=(batch_size, seq_len))
    # All-true mask: identical setup to bench_components.test_minibert_forward,
    # so forward_ms_per_batch is directly comparable to the PR 1 baseline.
    mask = np.ones_like(token_ids, dtype=bool)

    encoder = MiniBERT(config)
    encoder.eval()

    results: dict[str, float] = {}
    for fused in (True, False):
        _set_fused(encoder, fused)
        key = "fused" if fused else "unfused"
        results[f"forward_ms_{key}"] = round(
            _median_ms(lambda: encoder(token_ids, attention_mask=mask), repeats), 3
        )
        with no_grad():
            results[f"inference_ms_{key}"] = round(
                _median_ms(lambda: encoder(token_ids, attention_mask=mask), repeats), 3
            )
    _set_fused(encoder, True)

    deberta = MiniDeBERTa(config.as_deberta())
    deberta.eval()
    with no_grad():
        results["deberta_inference_ms"] = round(
            _median_ms(lambda: deberta(token_ids, attention_mask=mask), repeats), 3
        )

    # One fine-tuning step (forward + backward + AdamW) on the fused path.
    model = KGLinkModel(MiniBERT(config), num_labels=40)
    optimizer = AdamW(model.parameters(), lr=1e-3)
    step_rng = np.random.default_rng(seed + 1)
    labels = step_rng.integers(0, 40, size=(batch_size * 3,))
    batch_index = np.repeat(np.arange(batch_size), 3)
    positions = np.tile(np.array([0, 40, 80]), batch_size)

    def train_step() -> None:
        hidden = model.encode(token_ids, mask)
        cls_vectors = model.gather_positions(hidden, batch_index, positions)
        logits = model.classification_logits(cls_vectors)
        loss = F.cross_entropy(logits, labels)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()

    results["train_step_ms"] = round(_median_ms(train_step, repeats), 3)
    return results


def run(batch_size: int, seq_len: int, repeats: int, seed: int) -> dict:
    config = PLMConfig(vocab_size=2000, hidden_size=64, num_layers=2, num_heads=4,
                       intermediate_size=128, max_position_embeddings=max(256, seq_len),
                       seed=seed)
    policy = get_dtype_policy()
    results = _measure(config, batch_size, seq_len, repeats, seed)
    # The float64 escape-hatch reference on the same machine and workload:
    # this is the "before" of the dtype-policy change (PR 2 ran all-float64).
    with dtype_policy(FLOAT64_POLICY):
        reference = _measure(config, batch_size, seq_len, max(3, repeats // 3), seed)

    return {
        "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": {
            "batch_size": batch_size,
            "seq_len": seq_len,
            "hidden_size": config.hidden_size,
            "num_layers": config.num_layers,
            "num_heads": config.num_heads,
            "repeats": repeats,
            "seed": seed,
            "dtype_policy": {
                "compute": str(policy.compute),
                "accumulate": str(policy.accumulate),
            },
        },
        "encoder": {
            "pr1_baseline": {
                "forward_ms": 89.5,
                "note": (
                    "fixed historical reference: bench_components."
                    "test_minibert_forward mean at the PR 1 tag (same shapes "
                    "and mask) on the original dev machine; only meaningful "
                    "against numbers from comparable hardware"
                ),
            },
            "forward_ms_per_batch": results["forward_ms_fused"],
            "forward_ms_unfused": results["forward_ms_unfused"],
            "fused_attention_speedup": round(
                results["forward_ms_unfused"] / results["forward_ms_fused"], 2
            ),
            "inference_ms_per_batch": results["inference_ms_fused"],
            "inference_ms_unfused": results["inference_ms_unfused"],
            "deberta_inference_ms_per_batch": results["deberta_inference_ms"],
        },
        "training": {
            "train_step_ms": results["train_step_ms"],
        },
        "float64_reference": {
            "note": (
                "same workload re-run under FLOAT64_POLICY (the pre-policy "
                "default): the dtype-policy speedup on this machine"
            ),
            "forward_ms_per_batch": reference["forward_ms_fused"],
            "inference_ms_per_batch": reference["inference_ms_fused"],
            "train_step_ms": reference["train_step_ms"],
            "forward_speedup_vs_float64": round(
                reference["forward_ms_fused"] / results["forward_ms_fused"], 2
            ),
            "train_step_speedup_vs_float64": round(
                reference["train_step_ms"] / results["train_step_ms"], 2
            ),
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--seq-len", type=int, default=160)
    parser.add_argument("--repeats", type=int, default=15)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=str, default=None,
                        help="write results as JSON to this path")
    args = parser.parse_args()

    results = run(args.batch_size, args.seq_len, args.repeats, args.seed)
    payload = json.dumps(results, indent=2)
    print(payload)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(payload + "\n")


if __name__ == "__main__":
    main()
