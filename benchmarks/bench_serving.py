"""Gateway serving benchmark: coalescing, capacity and overload behaviour.

Trains the same tiny KGLink system as ``bench_retrieval.py``'s serving
section, puts a :class:`~repro.gateway.Gateway` in front of it on a loopback
socket, and measures the serving tier end to end — HTTP parse, admission,
micro-batching, PLM inference, response — with real concurrent clients on
one event loop:

* **closed loop** (8 keep-alive connections, each firing its next request as
  the previous answer lands): sustained capacity in tables/second and the
  p50/p99 request latency at full utilisation;
* **coalescing speedup**: the same closed loop against a gateway with
  micro-batching disabled (``max_batch=1``) — the ratio isolates what
  request coalescing buys on the vectorized Part-2 path;
* **open loop** at 0.5×/1×/2× of the measured capacity: requests arrive on a
  fixed schedule whether or not earlier ones finished (the overload shape a
  closed loop can never produce), each carrying an ``X-Deadline-Ms`` budget.
  Per rate the run records throughput, goodput, shed/expired rates and the
  p50/p99 of successful answers — at 2× the gateway must shed with typed
  503/504s while every request still gets an answer (``answered_rate`` is
  gated at 1.0 in CI);
* **fleet tier**: the same closed loop against a 2-replica
  ``repro.fleet`` deployment (worker processes behind the gateway) of the
  same bundle — ``fleet.scaling_2_replicas`` is fleet throughput over the
  single-process capacity, and a second warmed pass measures the shared
  results cache's hit path (``fleet.cache_hit_p50_ms`` and the
  miss-over-hit ``fleet.cache_hit_speedup``).

Results go to JSON (``scripts/run_benchmarks.sh`` commits them as
``BENCH_serving.json``); ``scripts/check_bench_regression.py`` gates the
hardware-independent ratios per PR.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py --output BENCH_serving.json
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import json
import tempfile
import time
from datetime import datetime, timezone

from repro.gateway import DEADLINE_HEADER, Gateway, GatewayConfig, HttpConnection

CLIENT_CONNECTIONS = 8
OVERLOAD_FACTORS = {"overload_x0_5": 0.5, "overload_x1": 1.0, "overload_x2": 2.0}


# --------------------------------------------------------------------------- #
# workload
# --------------------------------------------------------------------------- #
def build_service(seed: int, n_tables: int, max_batch: int):
    """The tiny trained serving stack (mirrors bench_retrieval's serving run)."""
    from repro.core.annotator import KGLinkAnnotator, KGLinkConfig
    from repro.data.corpus import TableCorpus
    from repro.data.semtab import SemTabConfig, SemTabGenerator
    from repro.kg.builder import KGWorldConfig, build_default_kg

    world = build_default_kg(KGWorldConfig(seed=seed + 5).scaled(0.25))
    corpus = SemTabGenerator(
        world, SemTabConfig(num_tables=16 + n_tables, seed=seed + 9)
    ).generate()
    train = TableCorpus("train", corpus.tables[:16], corpus.label_vocabulary)
    serve_tables = corpus.tables[16 : 16 + n_tables]

    config = KGLinkConfig(
        epochs=1, batch_size=8, learning_rate=1e-3, pretrain_steps=4,
        hidden_size=32, num_layers=2, num_heads=2, intermediate_size=48,
        top_k_rows=6, max_tokens_per_column=12, vocab_size=1200,
        max_position_embeddings=160, max_feature_tokens=10, seed=seed,
    )
    annotator = KGLinkAnnotator(world.graph, config)
    annotator.fit(train)
    service = annotator.into_service(max_batch=max_batch)
    service.annotate_batch(serve_tables)  # warm the Part-1 cache
    return service, serve_tables, annotator


def payload_of(table) -> dict:
    return {
        "table_id": table.table_id,
        "columns": [{"name": column.name, "cells": list(column.cells)}
                    for column in table.columns],
    }


def percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


# --------------------------------------------------------------------------- #
# closed loop: capacity and latency at full utilisation
# --------------------------------------------------------------------------- #
async def closed_loop(port: int, payloads: list[dict], n_requests: int,
                      connections: int = CLIENT_CONNECTIONS):
    """``connections`` clients each firing as fast as answers come back."""
    counter = itertools.count()
    latencies_ms: list[float] = []

    async def client() -> None:
        connection = await HttpConnection.open("127.0.0.1", port)
        try:
            while True:
                index = next(counter)
                if index >= n_requests:
                    return
                start = time.perf_counter()
                response = await connection.request(
                    "POST", "/annotate",
                    json_body=payloads[index % len(payloads)],
                )
                latencies_ms.append((time.perf_counter() - start) * 1e3)
                if response.status != 200:
                    raise RuntimeError(
                        f"closed-loop request failed: {response.status} "
                        f"{response.body[:200]!r}"
                    )
        finally:
            await connection.aclose()

    start = time.perf_counter()
    await asyncio.gather(*[client() for _ in range(connections)])
    elapsed = time.perf_counter() - start
    return {
        "tables_per_second": round(n_requests / elapsed, 1),
        "p50_ms": round(percentile(latencies_ms, 0.50), 2),
        "p99_ms": round(percentile(latencies_ms, 0.99), 2),
        "n_requests": n_requests,
        "connections": connections,
    }


# --------------------------------------------------------------------------- #
# open loop: fixed-rate arrivals with deadlines (the overload shape)
# --------------------------------------------------------------------------- #
async def open_loop(port: int, payloads: list[dict], rate_rps: float,
                    n_requests: int, deadline_ms: float) -> dict:
    loop = asyncio.get_running_loop()
    outcomes: list[tuple[int, float]] = []
    headers = {DEADLINE_HEADER: f"{deadline_ms:g}"}

    async def fire(index: int, at: float) -> None:
        delay = at - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        start = time.perf_counter()
        try:
            async with await HttpConnection.open("127.0.0.1", port) as connection:
                response = await connection.request(
                    "POST", "/annotate",
                    json_body=payloads[index % len(payloads)], headers=headers,
                )
            status = response.status
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            status = -1  # a dropped connection would break answered_rate
        outcomes.append((status, (time.perf_counter() - start) * 1e3))

    first = loop.time() + 0.05
    start = time.perf_counter()
    await asyncio.gather(*[
        fire(index, first + index / rate_rps) for index in range(n_requests)
    ])
    elapsed = time.perf_counter() - start

    statuses = [status for status, _ in outcomes]
    ok_latencies = [latency for status, latency in outcomes if status == 200]
    n = len(outcomes)
    n_ok = statuses.count(200)
    n_shed = statuses.count(503)
    n_expired = statuses.count(504)
    p99 = percentile(ok_latencies, 0.99)
    return {
        "offered_rps": round(rate_rps, 1),
        "n_requests": n,
        "deadline_ms": deadline_ms,
        "throughput_rps": round(n / elapsed, 1),
        "goodput_rps": round(n_ok / elapsed, 1),
        # Every request must come back with *some* typed status — the
        # zero-silent-drops invariant, gated at 1.0 in CI.
        "answered_rate": round(sum(
            1 for status in statuses if status in (200, 503, 504)
        ) / n, 4),
        "goodput_rate": round(n_ok / n, 4),
        "shed_rate": round(n_shed / n, 4),
        "expired_rate": round(n_expired / n, 4),
        "p50_ms": round(percentile(ok_latencies, 0.50), 2),
        "p99_ms": round(p99, 2),
        # Successful answers must land inside their budget (the response
        # edge enforces it server-side; the slack covers client-side I/O).
        "p99_over_deadline": round(p99 / deadline_ms, 4),
        "statuses": {str(status): statuses.count(status)
                     for status in sorted(set(statuses))},
    }


# --------------------------------------------------------------------------- #
# fleet tier: 2 worker processes behind the gateway, shared results cache
# --------------------------------------------------------------------------- #
def bench_fleet(bundle_dir, payloads: list[dict], *, replicas: int,
                max_batch: int, max_wait_ms: float,
                service_max_batch: int) -> dict:
    """Closed-loop capacity of a process-replica fleet, plus the cache hit path.

    Two passes over the same bundle: one with the shared results cache
    disabled (``maxsize=0``) so every request travels the wire to a replica
    — the fan-out scaling number — and one with the cache warmed so the
    measured loop is answered from router memory — the hit-path latency.
    """
    from repro.fleet import (
        FleetRouter,
        ProcessLauncher,
        ReplicaSupervisor,
        SharedResultsCache,
    )

    def fleet_router(cache_size: int) -> FleetRouter:
        launcher = ProcessLauncher(
            bundle_dir, service_kwargs={"max_batch": service_max_batch}
        )
        supervisor = ReplicaSupervisor(launcher, replicas,
                                       heartbeat_interval_s=60.0)
        supervisor.start()
        return FleetRouter(supervisor,
                           cache=SharedResultsCache(maxsize=cache_size),
                           max_batch=max_batch, own_supervisor=True)

    config = GatewayConfig(port=0, max_batch=max_batch,
                           max_wait_ms=max_wait_ms,
                           max_concurrent_batches=2, default_deadline_ms=0.0)

    async def measure(router) -> dict:
        async with Gateway(router, config) as gateway:
            await closed_loop(gateway.port, payloads, len(payloads))  # warm-up
            return await closed_loop(gateway.port, payloads,
                                     12 * len(payloads))

    # Miss path: every request is annotated by a replica.
    router = fleet_router(0)
    try:
        nocache = asyncio.run(measure(router))
    finally:
        router.close()

    # Hit path: the warm-up pass fills the shared cache; the measured loop
    # is (re-)answered from router memory without touching a replica.
    router = fleet_router(4096)
    try:
        cached = asyncio.run(measure(router))
        cache_stats = router.stats().results_cache
    finally:
        router.close()

    return {
        "replicas": replicas,
        "tables_per_second": nocache["tables_per_second"],
        "p50_ms": nocache["p50_ms"],
        "p99_ms": nocache["p99_ms"],
        "cache_hit_tables_per_second": cached["tables_per_second"],
        "cache_hit_p50_ms": cached["p50_ms"],
        "cache_hit_p99_ms": cached["p99_ms"],
        "cache_hits": cache_stats["hits"],
        # Miss-path p50 over hit-path p50: what the shared cache buys.
        "cache_hit_speedup": round(
            nocache["p50_ms"] / max(cached["p50_ms"], 1e-6), 2
        ),
    }


# --------------------------------------------------------------------------- #
async def run_benchmark(service, serve_tables, *, max_batch: int,
                        max_wait_ms: float, seconds_per_rate: float) -> dict:
    payloads = [payload_of(table) for table in serve_tables]

    def config(**overrides) -> GatewayConfig:
        base = dict(port=0, max_batch=max_batch, max_wait_ms=max_wait_ms,
                    max_concurrent_batches=2, default_deadline_ms=0.0)
        base.update(overrides)
        return GatewayConfig(**base)

    # Closed loop, coalescing on: sustained capacity.
    async with Gateway(service, config()) as gateway:
        await closed_loop(gateway.port, payloads, len(payloads))  # warm-up
        capacity = await closed_loop(gateway.port, payloads, 12 * len(payloads))
        coalesced_stats = gateway.stats()

    # Closed loop, coalescing off: what micro-batching is worth.
    async with Gateway(service, config(max_batch=1)) as gateway:
        await closed_loop(gateway.port, payloads, len(payloads))  # warm-up
        uncoalesced = await closed_loop(gateway.port, payloads,
                                        12 * len(payloads))

    capacity_rps = capacity["tables_per_second"]
    deadline_ms = float(min(2000.0, max(250.0, 20.0 * capacity["p50_ms"])))
    # Bound the queue at a quarter-deadline of work: sustained overload must
    # turn into typed shedding, not an ever-deeper queue that quietly eats
    # the deadline.  (The closed loop under-estimates true capacity — open
    # arrivals coalesce better — so the bound has to bind well below 2×.)
    max_queue = max(8, int(capacity_rps * deadline_ms / 1e3 / 4))

    overload: dict[str, dict] = {}
    for name, factor in OVERLOAD_FACTORS.items():
        rate = capacity_rps * factor
        n_requests = max(40, min(2500, int(rate * seconds_per_rate)))
        async with Gateway(service, config(max_queue=max_queue)) as gateway:
            overload[name] = await open_loop(
                gateway.port, payloads, rate, n_requests, deadline_ms
            )

    return {
        "capacity_tables_per_second": capacity_rps,
        "closed_loop_p50_ms": capacity["p50_ms"],
        "closed_loop_p99_ms": capacity["p99_ms"],
        "uncoalesced_tables_per_second": uncoalesced["tables_per_second"],
        "batch_coalescing_speedup": round(
            capacity_rps / uncoalesced["tables_per_second"], 2
        ),
        "coalesced_mean_batch_size": coalesced_stats["mean_batch_size"],
        "client_connections": CLIENT_CONNECTIONS,
        "deadline_ms": deadline_ms,
        "max_queue": max_queue,
        **overload,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--n-tables", type=int, default=48,
                        help="distinct tables in the request pool")
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--max-wait-ms", type=float, default=4.0)
    parser.add_argument("--seconds-per-rate", type=float, default=6.0,
                        help="target duration of each open-loop overload run")
    parser.add_argument("--replicas", type=int, default=2,
                        help="fleet-tier worker processes (0 skips the fleet run)")
    parser.add_argument("--output", type=str, default=None,
                        help="write results JSON here (default: stdout only)")
    args = parser.parse_args()

    print(f"training the tiny serving stack (seed={args.seed}, "
          f"{args.n_tables} serve tables)...", flush=True)
    service, serve_tables, annotator = build_service(args.seed, args.n_tables,
                                                     args.max_batch)
    try:
        gateway_metrics = asyncio.run(run_benchmark(
            service, serve_tables, max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            seconds_per_rate=args.seconds_per_rate,
        ))
    finally:
        service.close()

    fleet_metrics = None
    if args.replicas > 0:
        from repro.serve import ServiceBundle

        print(f"fleet tier: {args.replicas} worker processes...", flush=True)
        with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
            bundle_dir = ServiceBundle.from_annotator(annotator).save(
                f"{tmp}/svc"
            )
            fleet_metrics = bench_fleet(
                bundle_dir, [payload_of(table) for table in serve_tables],
                replicas=args.replicas, max_batch=args.max_batch,
                max_wait_ms=args.max_wait_ms,
                service_max_batch=args.max_batch,
            )
        # Fleet throughput over the single-process gateway's capacity on
        # the same bundle.  On a single-core runner the replicas share one
        # core and this sits near (or below) 1.0 — the CI gate is wide for
        # exactly that reason; see scripts/check_bench_regression.py.
        fleet_metrics[f"scaling_{args.replicas}_replicas"] = round(
            fleet_metrics["tables_per_second"]
            / gateway_metrics["capacity_tables_per_second"], 2
        )

    results = {
        "generated_utc": datetime.now(timezone.utc).isoformat(),
        "config": {
            "seed": args.seed,
            "n_tables": args.n_tables,
            "max_batch": args.max_batch,
            "max_wait_ms": args.max_wait_ms,
            "seconds_per_rate": args.seconds_per_rate,
            "replicas": args.replicas,
        },
        "gateway": gateway_metrics,
    }
    if fleet_metrics is not None:
        results["fleet"] = fleet_metrics
    payload = json.dumps(results, indent=2)
    print(payload)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(payload + "\n")
        print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
