"""Benchmark regenerating Table IV (accuracy without extracted KG information)."""

from __future__ import annotations

import math

from repro.experiments import table4


def test_table4_no_kg_information(benchmark, resources, smoke_profile):
    result = benchmark.pedantic(
        lambda: table4.run(resources, smoke_profile), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert {row["model"] for row in result.rows} == {
        "KGLink", "HNN", "TaBERT", "Doduo", "RECA", "Sudowoodo"
    }
    for row in result.rows:
        for key in ("numeric_accuracy", "non_numeric_accuracy"):
            value = row[key]
            assert math.isnan(value) or 0.0 <= value <= 100.0
