"""Benchmark regenerating Figure 9 (data efficiency with varying training proportion)."""

from __future__ import annotations

from repro.experiments import figure9


def test_figure9_data_efficiency(benchmark, resources, smoke_profile):
    result = benchmark.pedantic(
        lambda: figure9.run(resources, smoke_profile, proportions=(0.4, 1.0)),
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    variants = {row["variant"] for row in result.rows}
    assert variants == {"KGLink", "KGLink w/o msk"}
    proportions = {row["proportion"] for row in result.rows}
    assert proportions == {0.4, 1.0}
    # More training data must not shrink the training corpus.
    for variant in variants:
        sizes = {row["proportion"]: row["train_tables"] for row in result.rows
                 if row["variant"] == variant}
        assert sizes[1.0] >= sizes[0.4]
