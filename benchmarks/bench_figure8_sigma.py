"""Benchmark regenerating Figure 8 (loss-uncertainty sensitivity and trajectories)."""

from __future__ import annotations

from repro.experiments import figure8


def test_figure8_sigma_analysis(benchmark, resources, smoke_profile):
    result = benchmark.pedantic(
        lambda: figure8.run(resources, smoke_profile, sweep=(0.4, 1.4)),
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    panels = {row["panel"] for row in result.rows}
    assert "a" in panels
    sweep_rows = [row for row in result.rows if row["panel"] == "a"]
    assert all(0.0 <= row["accuracy"] <= 100.0 for row in sweep_rows)
