"""Micro-benchmarks of the individual substrates.

These measure the building blocks whose cost dominates the end-to-end
pipeline: BM25 retrieval, cell linking, Part 1 candidate-type extraction, the
MiniBERT forward pass and one fine-tuning step.  They complement the
experiment-level benchmarks with stable, repeatable component timings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.annotator import KGLinkAnnotator, KGLinkConfig
from repro.core.model import KGLinkModel
from repro.core.pipeline import KGCandidateExtractor, Part1Config
from repro.data.corpus import TableCorpus
from repro.kg.backends import BM25Index
from repro.kg.linker import EntityLinker, LinkerConfig
from repro.nn import functional as F
from repro.nn.layers import MultiHeadSelfAttention
from repro.nn.optim import AdamW
from repro.nn.tensor import Tensor, no_grad
from repro.plm.config import PLMConfig
from repro.plm.model import MiniBERT


@pytest.fixture(scope="module")
def extractor(resources):
    return KGCandidateExtractor(
        resources.world.graph, Part1Config(top_k_rows=8), linker=resources.linker
    )


def test_bm25_build_and_finalize(benchmark, resources):
    documents = [
        (entity.entity_id, entity.document_text())
        for entity in resources.world.graph.entities()
    ]

    def run():
        index = BM25Index.build(documents)
        index.finalize()
        return index

    index = benchmark(run)
    assert len(index) == len(documents)


def test_bm25_search_batch(benchmark, resources):
    index = resources.linker.index
    queries = [entity.label for entity in list(resources.world.graph.entities())[:200]]
    index.finalize()

    hits = benchmark(lambda: index.search_batch(queries, top_k=10))
    assert len(hits) == 200


def test_linker_batch_throughput(benchmark, resources):
    tables = resources.semtab.tables[:5]
    mentions = [
        table.cell(row, col)
        for table in tables
        for row in range(table.n_rows)
        for col in range(table.n_columns)
    ]
    # Private linker sharing the session index; the cache is dropped inside
    # the measured function so every round links cold instead of timing
    # lru_cache hits on the shared fixture.
    linker = EntityLinker(
        resources.world.graph,
        LinkerConfig(max_candidates=8),
        index=resources.linker.index,
    )

    def run():
        linker.cache_clear()
        return linker.link_batch(mentions)

    results = benchmark(run)
    assert len(results) == len(mentions)


def test_bm25_search(benchmark, resources):
    index = resources.linker.index
    queries = [entity.label for entity in list(resources.world.graph.entities())[:50]]

    def run():
        return [index.search(query, top_k=10) for query in queries]

    hits = benchmark(run)
    assert len(hits) == 50


def test_entity_linking_one_table(benchmark, resources, extractor):
    table = resources.semtab.tables[0]
    result = benchmark(lambda: extractor.link_table(table))
    assert len(result) == table.n_rows


def test_part1_process_table(benchmark, resources, extractor):
    table = resources.semtab.tables[1]
    processed = benchmark(lambda: extractor.process_table(table))
    assert len(processed.columns) == table.n_columns


def test_minibert_forward(benchmark):
    encoder = MiniBERT(PLMConfig(vocab_size=2000, hidden_size=64, num_layers=2, num_heads=4,
                                 intermediate_size=128, max_position_embeddings=256))
    encoder.eval()
    rng = np.random.default_rng(0)
    token_ids = rng.integers(0, 2000, size=(8, 160))
    mask = np.ones_like(token_ids, dtype=bool)
    hidden = benchmark(lambda: encoder(token_ids, attention_mask=mask))
    assert hidden.shape == (8, 160, 64)


def test_minibert_inference(benchmark):
    """Same forward under no_grad: the prediction-path cost."""
    encoder = MiniBERT(PLMConfig(vocab_size=2000, hidden_size=64, num_layers=2, num_heads=4,
                                 intermediate_size=128, max_position_embeddings=256))
    encoder.eval()
    rng = np.random.default_rng(0)
    token_ids = rng.integers(0, 2000, size=(8, 160))
    mask = np.ones_like(token_ids, dtype=bool)

    def run():
        with no_grad():
            return encoder(token_ids, attention_mask=mask)

    hidden = benchmark(run)
    assert hidden.shape == (8, 160, 64)


def _attention_inputs():
    rng = np.random.default_rng(2)
    layer = MultiHeadSelfAttention(hidden_size=64, num_heads=4, dropout=0.0,
                                   rng=np.random.default_rng(7))
    x = Tensor(rng.normal(size=(8, 160, 64)))
    mask = np.ones((8, 160), dtype=bool)
    mask[:, 120:] = False
    return layer, x, mask


def test_attention_fused(benchmark):
    layer, x, mask = _attention_inputs()
    layer.fused = True
    out = benchmark(lambda: layer(x, attention_mask=mask))
    assert out.shape == x.shape


def test_attention_unfused(benchmark):
    layer, x, mask = _attention_inputs()
    layer.fused = False
    out = benchmark(lambda: layer(x, attention_mask=mask))
    assert out.shape == x.shape


@pytest.fixture(scope="module")
def serving(resources):
    """A tiny trained service plus the tables it is benchmarked on.

    The Part-1 cache is pre-warmed so both serving benchmarks measure the
    Part-2 micro-batching path (Part-1 cost is identical per table in both
    request shapes).
    """
    config = KGLinkConfig(
        epochs=1, batch_size=8, learning_rate=1e-3, pretrain_steps=4,
        hidden_size=32, num_layers=1, num_heads=2, intermediate_size=48,
        top_k_rows=6, max_tokens_per_column=14, vocab_size=1200,
        max_position_embeddings=160, max_feature_tokens=10,
    )
    annotator = KGLinkAnnotator(resources.world.graph, config, linker=resources.linker)
    tables = resources.semtab.tables
    train = TableCorpus("train", tables[:10], resources.semtab.label_vocabulary)
    annotator.fit(train)
    service = annotator.into_service(max_batch=16)
    serve_tables = tables[10:34]
    service.annotate_batch(serve_tables)  # warm the Part-1 cache
    return service, serve_tables


def test_service_annotate_loop(benchmark, serving):
    service, tables = serving
    results = benchmark(lambda: [service.annotate(table) for table in tables])
    assert len(results) == len(tables)


def test_service_annotate_batch(benchmark, serving):
    service, tables = serving
    results = benchmark(lambda: service.annotate_batch(tables))
    assert len(results) == len(tables)


def test_service_annotate_stream(benchmark, serving):
    service, tables = serving
    results = benchmark(lambda: list(service.annotate_stream(tables, max_batch=8)))
    assert len(results) == len(tables)


def test_training_step(benchmark):
    encoder = MiniBERT(PLMConfig(vocab_size=1000, hidden_size=64, num_layers=2, num_heads=4,
                                 intermediate_size=128, max_position_embeddings=160))
    model = KGLinkModel(encoder, num_labels=40)
    optimizer = AdamW(model.parameters(), lr=1e-3)
    rng = np.random.default_rng(1)
    token_ids = rng.integers(0, 1000, size=(4, 120))
    mask = np.ones_like(token_ids, dtype=bool)
    labels = rng.integers(0, 40, size=(12,))
    batch_index = np.repeat(np.arange(4), 3)
    positions = np.tile(np.array([0, 40, 80]), 4)

    def step():
        hidden = model.encode(token_ids, mask)
        cls_vectors = model.gather_positions(hidden, batch_index, positions)
        logits = model.classification_logits(cls_vectors)
        loss = F.cross_entropy(logits, labels)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        return float(loss.data)

    loss_value = benchmark(step)
    assert np.isfinite(loss_value)
