#!/usr/bin/env bash
# Run the retrieval and PLM benchmarks and record the numbers in
# BENCH_retrieval.json / BENCH_plm.json at the repo root, so every PR leaves
# a performance data point behind.
#
# Usage: scripts/run_benchmarks.sh [extra bench_retrieval.py args...]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python benchmarks/bench_retrieval.py --output BENCH_retrieval.json "$@"
python benchmarks/bench_plm.py --output BENCH_plm.json

echo
echo "Wrote $REPO_ROOT/BENCH_retrieval.json and $REPO_ROOT/BENCH_plm.json"
echo "For pytest-benchmark component timings, run:"
echo "  PYTHONPATH=src python -m pytest benchmarks/bench_components.py -q"
