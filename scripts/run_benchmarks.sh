#!/usr/bin/env bash
# Run the retrieval, PLM and gateway-serving benchmarks and record the
# numbers in BENCH_retrieval.json / BENCH_plm.json / BENCH_serving.json at
# the repo root, so every PR leaves a performance data point behind.
#
# Usage: scripts/run_benchmarks.sh [extra bench_retrieval.py args...]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python benchmarks/bench_retrieval.py --output BENCH_retrieval.json "$@"
python benchmarks/bench_plm.py --output BENCH_plm.json
python benchmarks/bench_serving.py --output BENCH_serving.json

echo
echo "Wrote BENCH_retrieval.json, BENCH_plm.json and BENCH_serving.json in $REPO_ROOT"
echo "For pytest-benchmark component timings, run:"
echo "  PYTHONPATH=src python -m pytest benchmarks/bench_components.py -q"
