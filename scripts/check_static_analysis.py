#!/usr/bin/env python
"""Gate the repo on the project static analyzer (``repro.analysis``).

Thin wrapper over ``python -m repro.analysis`` that pins the tree the CI
``analyze`` job checks (``src tests benchmarks scripts examples``) and makes
``src/`` importable without requiring an editable install, so the gate runs
identically in CI, in a fresh checkout and from a git hook::

    python scripts/check_static_analysis.py            # the CI invocation
    python scripts/check_static_analysis.py --show-waived
    python scripts/check_static_analysis.py src        # narrower sweep

Exit status is the analyzer's own: 0 when every finding is waived (waivers
need a reason — see ``# repro: allow[CODE] -- reason`` in repro/analysis),
1 on any unwaived finding, 2 on usage errors.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ["src", "tests", "benchmarks", "scripts", "examples"]


def main(argv: list[str] | None = None) -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.analysis.__main__ import main as analysis_main

    argv = list(sys.argv[1:] if argv is None else argv)
    if not any(not arg.startswith("-") for arg in argv):
        argv += [str(REPO_ROOT / path) for path in DEFAULT_PATHS]
    return analysis_main(argv)


if __name__ == "__main__":
    sys.exit(main())
