#!/usr/bin/env python
"""Gate benchmark regressions against the committed BENCH_*.json baselines.

Compares a freshly generated ``BENCH_plm.json`` / ``BENCH_retrieval.json`` /
``BENCH_serving.json`` against the baselines committed at the repo root and
exits non-zero when any tracked metric regressed by more than the tolerance
(default 25%).

Metrics come in two classes:

* **ratio** metrics (speedup factors measured within one run, e.g.
  ``search_speedup``) are hardware-independent and are always checked;
* **absolute** metrics (wall-clock ms / throughput) only transfer between
  comparable machines; ``--ratios-only`` skips them, which is what CI uses
  because hosted runners are not comparable to the dev machine that produced
  the committed baselines.

Usage::

    # local, strict (absolute + ratio metrics, 25% tolerance):
    scripts/run_benchmarks.sh                       # writes the fresh numbers
    git stash -- BENCH_plm.json BENCH_retrieval.json  # or keep copies
    python scripts/check_bench_regression.py \
        --plm-current /tmp/BENCH_plm.json --retrieval-current /tmp/BENCH_retrieval.json

    # CI (hardware-independent ratios only):
    python scripts/check_bench_regression.py --ratios-only \
        --plm-current fresh_plm.json --retrieval-current fresh_retrieval.json
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


@dataclass(frozen=True)
class Metric:
    """One tracked benchmark number."""

    path: str          # dotted path into the JSON document
    higher_is_better: bool
    is_ratio: bool     # hardware-independent (always checked) vs absolute
    # Per-metric tolerance overriding the global one.  Quality metrics
    # (recall parity) regress by being *wrong*, not by being noisy, so they
    # get a near-zero allowance instead of the timing tolerance.
    max_regression: float | None = None


PLM_METRICS = [
    Metric("encoder.forward_ms_per_batch", higher_is_better=False, is_ratio=False),
    Metric("encoder.inference_ms_per_batch", higher_is_better=False, is_ratio=False),
    Metric("encoder.deberta_inference_ms_per_batch", higher_is_better=False, is_ratio=False),
    Metric("training.train_step_ms", higher_is_better=False, is_ratio=False),
    Metric("encoder.fused_attention_speedup", higher_is_better=True, is_ratio=True),
    # The float32-vs-float64 speedups are within-run ratios but NOT hardware
    # independent (SIMD width / BLAS build dependent), so they are classed as
    # absolute: gated locally, informational on CI.
    Metric("float64_reference.forward_speedup_vs_float64",
           higher_is_better=True, is_ratio=False),
    Metric("float64_reference.train_step_speedup_vs_float64",
           higher_is_better=True, is_ratio=False),
]

RETRIEVAL_METRICS = [
    Metric("bm25.build_seconds", higher_is_better=False, is_ratio=False),
    Metric("bm25.finalize_seconds", higher_is_better=False, is_ratio=False),
    Metric("bm25.vector_search_ms_per_query", higher_is_better=False, is_ratio=False),
    Metric("linker.batch_mentions_per_second", higher_is_better=True, is_ratio=False),
    Metric("serving.tables_per_second_batch", higher_is_better=True, is_ratio=False),
    Metric("bm25.search_speedup", higher_is_better=True, is_ratio=True),
    # Retrieval quality of the float32-postings default vs the float64 index:
    # a pure-parity number (no clock involved), gated everywhere with a
    # near-zero tolerance — a recall drop is a correctness bug, not noise.
    Metric("bm25.float32_recall_at_10", higher_is_better=True, is_ratio=True,
           max_regression=0.001),
    Metric("linker.engine_speedup", higher_is_better=True, is_ratio=True),
    # annotate_batch vs a one-table annotate() loop on the same warmed
    # service: a within-run speedup, hardware-independent, gated on CI.
    Metric("serving.batch_vs_loop_speedup", higher_is_better=True, is_ratio=True),
    # Within-run fan-out ratios (sharded search on a process pool vs the flat
    # index; process-pool Part-1 prepare vs serial), gated to catch plumbing
    # regressions (IPC bloat, lost overlap).  The benchmark caps both pools
    # at 2 workers so the ratio measures the fan-out machinery rather than
    # the host's core count; the usual CI tolerance absorbs scheduler noise.
    Metric("serving.sharded_search_speedup", higher_is_better=True, is_ratio=True),
    Metric("serving.process_pool_annotate_speedup",
           higher_is_better=True, is_ratio=True),
    # Fault-free cost of the resilience wrappers (deadline/retry/breaker
    # machinery) on the sharded search path: resilient time / bare time on
    # the same serial executor, so 1.0 means the wrappers are free.  Gated
    # with a tight 5% allowance (the committed baseline sits at ~1.0), so
    # the wrapped path must stay within ~5% of bare whatever the global
    # timing tolerance says.
    Metric("serving.resilience_overhead", higher_is_better=False, is_ratio=True,
           max_regression=0.05),
]

SERVING_METRICS = [
    # Gateway tier (BENCH_serving.json).  Absolute throughput/latency only
    # transfers between comparable machines; the ratios below are the CI
    # gate.
    Metric("gateway.capacity_tables_per_second", higher_is_better=True,
           is_ratio=False),
    Metric("gateway.closed_loop_p50_ms", higher_is_better=False, is_ratio=False),
    Metric("gateway.closed_loop_p99_ms", higher_is_better=False, is_ratio=False),
    # What request coalescing buys over a max_batch=1 gateway on the same
    # service — the micro-batcher's reason to exist.
    Metric("gateway.batch_coalescing_speedup", higher_is_better=True,
           is_ratio=True),
    # Zero silent drops under 2x overload: every request answered with a
    # typed status.  This is an invariant, not a timing — near-zero slack.
    Metric("gateway.overload_x2.answered_rate", higher_is_better=True,
           is_ratio=True, max_regression=0.001),
    # Overload floor: at 2x the gateway must still convert roughly its
    # capacity into 200s (sheds the rest, typed).  Loose bound — it exists
    # to catch goodput collapse, not scheduler noise.
    Metric("gateway.overload_x2.goodput_rate", higher_is_better=True,
           is_ratio=True, max_regression=0.75),
    # Successful answers honour their budget when uncongested.  Gated at
    # 0.5x where the number measures the serving path (at 2x, client-side
    # accept-backlog congestion dominates the tail); the wide allowance
    # still keeps p99 well under the deadline itself.
    Metric("gateway.overload_x0_5.p99_over_deadline", higher_is_better=False,
           is_ratio=True, max_regression=3.0),
    # Fleet tier (repro.fleet): 2 worker processes behind the gateway on the
    # same bundle.  Absolute numbers are machine-local as usual; the two
    # ratios below are the CI gate.
    Metric("fleet.tables_per_second", higher_is_better=True, is_ratio=False),
    Metric("fleet.cache_hit_p50_ms", higher_is_better=False, is_ratio=False),
    # Fleet throughput over the single-process gateway's capacity.  CAVEAT:
    # hosted CI runners are effectively single-core, so the two replicas
    # share one core and this ratio sits near 1.0 rather than near 2.0 —
    # the wide allowance gates only collapse (routing serialization, lost
    # overlap, a replica silently out of rotation), not sub-linear scaling.
    Metric("fleet.scaling_2_replicas", higher_is_better=True, is_ratio=True,
           max_regression=0.5),
    # Shared-results-cache hit path: miss-path p50 over hit-path p50 within
    # the same run.  A cached table must stay much cheaper than a replica
    # dispatch; the allowance covers loopback jitter, not a broken cache.
    Metric("fleet.cache_hit_speedup", higher_is_better=True, is_ratio=True,
           max_regression=0.5),
]


def _lookup(document: dict, dotted: str):
    node = document
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def _load(path: Path) -> dict:
    with open(path) as handle:
        return json.load(handle)


def compare(
    baseline: dict,
    current: dict,
    metrics: list[Metric],
    tolerance: float,
    ratios_only: bool,
    label: str,
) -> list[str]:
    """Return a list of human-readable regression descriptions."""
    regressions: list[str] = []
    for metric in metrics:
        if ratios_only and not metric.is_ratio:
            continue
        base_value = _lookup(baseline, metric.path)
        new_value = _lookup(current, metric.path)
        if base_value is None or new_value is None:
            # Baselines from before a metric existed (or trimmed files) are
            # informational, not fatal — the next regenerate fills them in.
            print(f"  [skip] {label}:{metric.path} (missing in "
                  f"{'baseline' if base_value is None else 'current'})")
            continue
        base_value = float(base_value)
        new_value = float(new_value)
        if base_value <= 0:
            print(f"  [skip] {label}:{metric.path} (non-positive baseline {base_value})")
            continue
        if metric.higher_is_better:
            change = (base_value - new_value) / base_value  # >0 means worse
        else:
            change = (new_value - base_value) / base_value  # >0 means worse
        limit = tolerance if metric.max_regression is None else metric.max_regression
        status = "worse" if change > 0 else "better"
        arrow = f"{base_value:g} -> {new_value:g} ({abs(change) * 100:.1f}% {status})"
        if change > limit:
            regressions.append(f"{label}:{metric.path}: {arrow} exceeds {limit:.2%}")
            print(f"  [FAIL] {label}:{metric.path} {arrow}")
        else:
            print(f"  [ ok ] {label}:{metric.path} {arrow}")
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--plm-baseline", type=Path, default=REPO_ROOT / "BENCH_plm.json")
    parser.add_argument("--plm-current", type=Path, default=None,
                        help="freshly generated PLM benchmark JSON")
    parser.add_argument("--retrieval-baseline", type=Path,
                        default=REPO_ROOT / "BENCH_retrieval.json")
    parser.add_argument("--retrieval-current", type=Path, default=None,
                        help="freshly generated retrieval benchmark JSON")
    parser.add_argument("--serving-baseline", type=Path,
                        default=REPO_ROOT / "BENCH_serving.json")
    parser.add_argument("--serving-current", type=Path, default=None,
                        help="freshly generated gateway serving benchmark JSON")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression per metric (default 0.25)")
    parser.add_argument("--ratios-only", action="store_true",
                        help="check only hardware-independent ratio metrics (CI mode)")
    args = parser.parse_args()

    if args.tolerance < 0:
        parser.error("--tolerance must be non-negative")
    pairs = []
    if args.plm_current is not None:
        pairs.append(("plm", args.plm_baseline, args.plm_current, PLM_METRICS))
    if args.retrieval_current is not None:
        pairs.append(
            ("retrieval", args.retrieval_baseline, args.retrieval_current, RETRIEVAL_METRICS)
        )
    if args.serving_current is not None:
        pairs.append(
            ("serving", args.serving_baseline, args.serving_current, SERVING_METRICS)
        )
    if not pairs:
        parser.error("nothing to check: pass --plm-current, --retrieval-current "
                     "and/or --serving-current")

    regressions: list[str] = []
    for label, baseline_path, current_path, metrics in pairs:
        print(f"{label}: {current_path} vs baseline {baseline_path} "
              f"(tolerance {args.tolerance:.0%}"
              f"{', ratios only' if args.ratios_only else ''})")
        regressions.extend(
            compare(_load(baseline_path), _load(current_path), metrics,
                    args.tolerance, args.ratios_only, label)
        )

    if regressions:
        print(f"\n{len(regressions)} benchmark regression(s):", file=sys.stderr)
        for line in regressions:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print("\nNo benchmark regressions beyond tolerance.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
